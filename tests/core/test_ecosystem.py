"""Ecosystem facade, demonstrators, and security monitor tests."""

import pytest

from repro.core import (
    Ecosystem,
    IoAccessMonitor,
    IoRegion,
    access_control_demo,
    crypto_demo,
    sensor_node_demo,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, UART_BASE

EXIT = "\n    li a7, 93\n    ecall\n"


class TestEcosystemFacade:
    def test_for_isa_parsing(self):
        eco = Ecosystem.for_isa("rv32imc_zicsr")
        assert eco.isa == RV32IMC_ZICSR

    def test_build_and_run(self):
        eco = Ecosystem()
        program = eco.build("_start: li a0, 9" + EXIT)
        _machine, result = eco.run(program)
        assert result.exit_code == 9

    def test_analyze_wcet(self):
        eco = Ecosystem()
        analysis = eco.analyze_wcet("""
        _start:
            li t0, 0
            li t1, 5
        loop:              # @loopbound 5
            addi t0, t0, 1
            blt t0, t1, loop
        """ + EXIT)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles

    def test_measure_coverage(self):
        eco = Ecosystem()
        report = eco.measure_coverage(eco.build("_start: nop" + EXIT))
        assert "addi" in report.insn_types

    def test_fault_campaign(self):
        from repro.faultsim import MutantBudget
        eco = Ecosystem()
        program = eco.build("_start: li a0, 3" + EXIT)
        result = eco.fault_campaign(
            program,
            budget=MutantBudget(code=5, gpr_transient=5, gpr_stuck=2,
                                memory_transient=0, memory_stuck=0),
            seed=1,
        )
        assert result.total == 12
        assert sum(result.counts.values()) == 12

    def test_suite_generators_accessible(self):
        eco = Ecosystem()
        assert len(eco.arch_suite()) >= 5
        assert len(eco.unit_suite()) >= 4
        assert len(eco.torture_suite(count=2, length=50)) == 2
        assert len(eco.structured_programs(count=2)) == 2

    def test_machine_configuration(self):
        eco = Ecosystem()
        machine = eco.machine(trace_registers=True, block_cache=False)
        assert machine.cpu.regs.trace
        assert not machine.cpu.block_cache_enabled


class TestAccessControlDemo:
    def test_correct_pin_opens(self):
        result = access_control_demo(pin=b"4711", attempt=b"4711")
        assert result.extras["granted"]
        assert "OPEN" in result.uart_output
        assert result.extras["violations"] == 0

    def test_wrong_pin_denied(self):
        result = access_control_demo(pin=b"4711", attempt=b"0000")
        assert not result.extras["granted"]
        assert "DENY" in result.uart_output

    def test_truncated_input_denied(self):
        result = access_control_demo(attempt=b"12")
        assert not result.extras["granted"]

    def test_empty_input_denied(self):
        result = access_control_demo(attempt=b"")
        assert not result.extras["granted"]

    def test_backdoor_detected(self):
        result = access_control_demo(with_backdoor=True)
        assert result.extras["violations"] == 2
        assert "unauthorized store" in result.extras["monitor_report"]
        # The backdoor leaked PIN bytes ahead of the OPEN message.
        assert result.uart_output.startswith("12")

    def test_clean_binary_reports_no_violation(self):
        result = access_control_demo(with_backdoor=False)
        assert "no violations" in result.extras["monitor_report"]

    def test_pin_validation(self):
        with pytest.raises(ValueError):
            access_control_demo(pin=b"123")
        with pytest.raises(ValueError):
            access_control_demo(attempt=b"12345")


class TestSensorNodeDemo:
    def test_runs_to_completion(self):
        result = sensor_node_demo(samples=8, interval=50)
        assert result.exit_code is not None
        assert 0 <= result.exit_code < 256

    def test_time_advances_by_interval_per_sample(self):
        result = sensor_node_demo(samples=10, interval=200)
        assert result.cycles >= 10 * 200

    def test_wfi_fast_forward_beats_busy_waiting(self):
        # Few instructions despite thousands of simulated cycles.
        result = sensor_node_demo(samples=10, interval=1000)
        assert result.cycles >= 10_000
        assert result.instructions < 1_000

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            sensor_node_demo(samples=0)
        with pytest.raises(ValueError):
            sensor_node_demo(interval=5)


class TestCryptoDemo:
    def test_reports_speedups(self):
        result = crypto_demo()
        assert result.extras["overall_speedup"] > 1.0
        assert set(result.extras["kernels"]) == {
            "popcount", "clz-normalise", "arx-mix", "masked-select",
            "clamp", "bit-scan",
        }


class TestIoAccessMonitor:
    def _machine_with_monitor(self, source, regions):
        from repro.asm import assemble
        machine = Machine()
        machine.load(assemble(source))
        monitor = IoAccessMonitor(regions)
        machine.add_plugin(monitor)
        machine.run(max_instructions=10_000)
        return monitor

    UART_STORE = """
    _start:
        li t0, 0x10000000
        li t1, 'X'
        sb t1, 0(t0)
    """ + EXIT

    def test_allowed_access_recorded_not_flagged(self):
        monitor = self._machine_with_monitor(self.UART_STORE, [IoRegion(
            "uart", UART_BASE, 0x100,
            allowed_code=((0x8000_0000, 0x8000_1000),),
        )])
        assert monitor.accesses_by_region["uart"] == 1
        assert monitor.violation_count == 0

    def test_disallowed_access_flagged(self):
        monitor = self._machine_with_monitor(self.UART_STORE, [IoRegion(
            "uart", UART_BASE, 0x100, allowed_code=(),
        )])
        assert monitor.violation_count == 1
        record = monitor.violations[0]
        assert record.is_store and record.addr == UART_BASE

    def test_non_io_accesses_ignored_by_default(self):
        monitor = self._machine_with_monitor("""
        _start:
            li t0, 0x80001000
            sw t1, 0(t0)
        """ + EXIT, [IoRegion("uart", UART_BASE, 0x100)])
        assert monitor.records == []

    def test_record_all_keeps_ram_accesses(self):
        from repro.asm import assemble
        machine = Machine()
        machine.load(assemble("""
        _start:
            li t0, 0x80001000
            sw t1, 0(t0)
        """ + EXIT))
        monitor = IoAccessMonitor([IoRegion("uart", UART_BASE, 0x100)],
                                  record_all=True)
        machine.add_plugin(monitor)
        machine.run(max_instructions=10_000)
        assert any(r.addr == 0x80001000 for r in monitor.records)

    def test_report_text(self):
        monitor = self._machine_with_monitor(self.UART_STORE, [IoRegion(
            "uart", UART_BASE, 0x100,
        )])
        report = monitor.report()
        assert "VIOLATIONS: 1" in report
