"""Dynamic taint-tracking tests."""

import pytest

from repro.asm import assemble
from repro.core import TaintRegion, TaintTracker
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig, RAM_BASE, UART_BASE

EXIT = "\n    li a7, 93\n    ecall\n"

SECRET_DATA = "\n.data\nsecret: .word 0xDEADBEEF\npublic: .word 0x42\n"


def run_tainted(source, sinks=None, sources=None, taint_symbols=("secret",),
                taint_size=4):
    program = assemble(source + SECRET_DATA, isa=RV32IMC_ZICSR)
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(program)
    tracker = TaintTracker(
        sources=sources or [],
        sinks=sinks or [TaintRegion("uart-tx", UART_BASE, 4)],
    )
    for symbol in taint_symbols:
        tracker.taint_memory(program.address_of(symbol), taint_size)
    machine.add_plugin(tracker)
    machine.run(max_instructions=100_000)
    tracker.finalize()
    return tracker, machine


class TestDirectFlow:
    def test_secret_store_to_sink_detected(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 1
        assert tracker.events[0].region == "uart-tx"

    def test_public_store_not_flagged(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, public
            lw t1, 0(t0)
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0

    def test_constant_store_not_flagged(self):
        tracker, _ = run_tainted("""
        _start:
            li t1, 'A'
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0


class TestPropagation:
    def test_arithmetic_propagates(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            addi t3, t1, 1      # derived from secret
            xor t4, t3, t3      # still derived (both operands tainted)
            li t2, 0x10000000
            sb t4, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 1

    def test_overwrite_with_constant_clears(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            li t1, 7            # constant kills the taint
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0

    def test_lui_clears(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            lui t1, 5
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0

    def test_taint_through_memory_roundtrip(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            la t3, scratch
            sw t1, 0(t3)        # park the secret in RAM
            li t1, 0
            lw t4, 0(t3)        # reload it
            li t2, 0x10000000
            sb t4, 0(t2)
        """ + EXIT + "\n.data\nscratch: .word 0")
        assert tracker.leak_count == 1

    def test_store_of_clean_value_untaints_memory(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            la t3, scratch
            sw t1, 0(t3)
            sw zero, 0(t3)      # clean overwrite
            lw t4, 0(t3)
            li t2, 0x10000000
            sb t4, 0(t2)
        """ + EXIT + "\n.data\nscratch: .word 0")
        assert tracker.leak_count == 0

    def test_branch_does_not_propagate_implicit_flow(self):
        # Documented scope limit: comparing the secret and acting on the
        # outcome is an implicit flow the tracker does not follow.
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            li t4, 0
            beqz t1, skip
            li t4, 1
        skip:
            li t2, 0x10000000
            sb t4, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0

    def test_x0_never_tainted(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw zero, 0(t0)      # write to x0 discards taint with the value
            li t2, 0x10000000
            sb zero, 0(t2)
        """ + EXIT)
        assert tracker.leak_count == 0


class TestSources:
    def test_uart_rx_as_source(self):
        program = assemble("""
        _start:
            li t0, 0x10000000
            lw t1, 4(t0)        # RXDATA (untrusted input)
            li t3, 0x10001000
            sw t1, 0(t3)        # straight to the GPIO actuator
        """ + EXIT, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        machine.uart.push_rx(b"\x01")
        tracker = TaintTracker(
            sources=[TaintRegion("uart-rx", UART_BASE + 4, 4)],
            sinks=[TaintRegion("gpio", 0x10001000, 16)],
        )
        machine.add_plugin(tracker)
        machine.run(max_instructions=1000)
        tracker.finalize()
        assert tracker.leak_count == 1
        assert tracker.events[0].region == "gpio"

    def test_pre_tainted_register(self):
        program = assemble("""
        _start:
            li t2, 0x10000000
            sb a0, 0(t2)
        """ + EXIT, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        tracker = TaintTracker(
            sinks=[TaintRegion("uart-tx", UART_BASE, 4)],
            tainted_registers={10},
        )
        machine.add_plugin(tracker)
        machine.run(max_instructions=1000)
        tracker.finalize()
        assert tracker.leak_count == 1


class TestReporting:
    def test_report_text(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        text = tracker.report()
        assert "1 sink event" in text
        assert "uart-tx" in text

    def test_finalize_idempotent(self):
        tracker, _ = run_tainted("""
        _start:
            la t0, secret
            lw t1, 0(t0)
            li t2, 0x10000000
            sb t1, 0(t2)
        """ + EXIT)
        count = tracker.leak_count
        tracker.finalize()
        tracker.finalize()
        assert tracker.leak_count == count


class TestDemoIntegration:
    def test_clean_firmware_no_leaks(self):
        from repro.core import access_control_demo

        result = access_control_demo(attempt=b"1234")
        assert result.extras["leaks"] == 0

    def test_backdoor_leaks_detected_by_taint(self):
        from repro.core import access_control_demo

        result = access_control_demo(with_backdoor=True)
        assert result.extras["leaks"] == 2
        assert "uart-tx" in result.extras["taint_report"]
