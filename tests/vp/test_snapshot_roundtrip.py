"""MachineSnapshot round-trip coverage across every device.

The campaign engine leans on snapshot/restore for machine reuse, and the
batch service amplifies how often that path runs — these tests pin down
that a mid-execution checkpoint captures and restores CLINT, UART, GPIO
(including ``out_history``), and the exit device exactly.
"""

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"

# Touches every device before exiting: UART TX, GPIO (three distinct pin
# states), CLINT mtimecmp, and a non-terminating exit-device store.
ALL_DEVICES = """
_start:
    li t0, 0x10000000      # UART
    li t1, 65
    sw t1, 0(t0)           # print 'A'
    li t0, 0x10001000      # GPIO
    li t1, 1
    sw t1, 0(t0)
    li t1, 3
    sw t1, 0(t0)
    li t1, 2
    sw t1, 0x0C(t0)        # CLEAR bit 1 -> out = 1 again
    li t0, 0x02004000      # CLINT mtimecmp
    li t1, 1234
    sw t1, 0(t0)
    li t0, 0x00100000      # exit device: even value does not terminate
    li t1, 4
    sw t1, 0(t0)
    li a0, 0
""" + EXIT


def device_state(machine):
    return {
        "clint": (machine.clint.mtime, machine.clint.mtimecmp,
                  machine.clint.msip),
        "uart": (bytes(machine.uart.tx_log), list(machine.uart._rx_queue),
                 machine.uart.interrupt_enable),
        "gpio": (machine.gpio.out, machine.gpio.inputs,
                 list(machine.gpio.out_history)),
        "exit": machine.exit_device.value,
        "pc": machine.cpu.pc,
        "regs": machine.cpu.regs.snapshot(),
    }


class TestSnapshotRoundTrip:
    def test_mid_run_snapshot_restores_all_devices(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"xy")       # host-side RX state
        machine.gpio.set_inputs(0x5A)
        machine.run(max_instructions=14)  # stop mid-program
        snap = machine.snapshot()
        before = device_state(machine)

        machine.run(max_instructions=10_000)  # run to completion, mutate
        assert device_state(machine) != before

        machine.restore(snap)
        assert device_state(machine) == before

    def test_gpio_out_history_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        machine.run(max_instructions=10_000)
        assert machine.gpio.out_history == [1, 3, 1]
        snap = machine.snapshot()

        machine.gpio.store(0x00, 4, 7)  # grow the history past the snap
        assert machine.gpio.out_history == [1, 3, 1, 7]

        machine.restore(snap)
        assert machine.gpio.out_history == [1, 3, 1]

    def test_restore_then_rerun_is_deterministic(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        first = machine.run(max_instructions=10_000)
        first_state = device_state(machine)

        machine.restore(snap)
        second = machine.run(max_instructions=10_000)
        assert second.exit_code == first.exit_code
        assert second.instructions == first.instructions
        assert device_state(machine) == first_state

    def test_clint_timer_state_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.clint.mtime = 999
        machine.clint.mtimecmp = 0x1_0000_0001
        machine.clint.msip = 1
        snap = machine.snapshot()
        machine.run(max_instructions=100)
        machine.clint.msip = 0
        machine.restore(snap)
        assert machine.clint.mtime == 999
        assert machine.clint.mtimecmp == 0x1_0000_0001
        assert machine.clint.msip == 1

    def test_uart_rx_queue_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"queued")
        machine.uart.interrupt_enable = 1
        snap = machine.snapshot()
        machine.uart.load(0x04, 4)  # drain one RX byte
        machine.uart.interrupt_enable = 0
        machine.restore(snap)
        assert bytes(machine.uart._rx_queue) == b"queued"
        assert machine.uart.interrupt_enable == 1

    def test_exit_device_value_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.exit_device.value = 4  # even: latched but not terminating
        snap = machine.snapshot()
        machine.exit_device.value = 8
        machine.restore(snap)
        assert machine.exit_device.value == 4
