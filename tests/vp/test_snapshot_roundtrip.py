"""MachineSnapshot round-trip coverage across every device.

The campaign engine leans on snapshot/restore for machine reuse, and the
batch service amplifies how often that path runs — these tests pin down
that a mid-execution checkpoint captures and restores CLINT, UART, GPIO
(including ``out_history``), and the exit device exactly.
"""

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"

# Touches every device before exiting: UART TX, GPIO (three distinct pin
# states), CLINT mtimecmp, and a non-terminating exit-device store.
ALL_DEVICES = """
_start:
    li t0, 0x10000000      # UART
    li t1, 65
    sw t1, 0(t0)           # print 'A'
    li t0, 0x10001000      # GPIO
    li t1, 1
    sw t1, 0(t0)
    li t1, 3
    sw t1, 0(t0)
    li t1, 2
    sw t1, 0x0C(t0)        # CLEAR bit 1 -> out = 1 again
    li t0, 0x02004000      # CLINT mtimecmp
    li t1, 1234
    sw t1, 0(t0)
    li t0, 0x00100000      # exit device: even value does not terminate
    li t1, 4
    sw t1, 0(t0)
    li a0, 0
""" + EXIT


def device_state(machine):
    return {
        "clint": (machine.clint.mtime, machine.clint.mtimecmp,
                  machine.clint.msip),
        "uart": (bytes(machine.uart.tx_log), list(machine.uart._rx_queue),
                 machine.uart.interrupt_enable),
        "gpio": (machine.gpio.out, machine.gpio.inputs,
                 list(machine.gpio.out_history)),
        "exit": machine.exit_device.value,
        "pc": machine.cpu.pc,
        "regs": machine.cpu.regs.snapshot(),
    }


class TestSnapshotRoundTrip:
    def test_mid_run_snapshot_restores_all_devices(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"xy")       # host-side RX state
        machine.gpio.set_inputs(0x5A)
        machine.run(max_instructions=14)  # stop mid-program
        snap = machine.snapshot()
        before = device_state(machine)

        machine.run(max_instructions=10_000)  # run to completion, mutate
        assert device_state(machine) != before

        machine.restore(snap)
        assert device_state(machine) == before

    def test_gpio_out_history_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        machine.run(max_instructions=10_000)
        assert machine.gpio.out_history == [1, 3, 1]
        snap = machine.snapshot()

        machine.gpio.store(0x00, 4, 7)  # grow the history past the snap
        assert machine.gpio.out_history == [1, 3, 1, 7]

        machine.restore(snap)
        assert machine.gpio.out_history == [1, 3, 1]

    def test_restore_then_rerun_is_deterministic(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        first = machine.run(max_instructions=10_000)
        first_state = device_state(machine)

        machine.restore(snap)
        second = machine.run(max_instructions=10_000)
        assert second.exit_code == first.exit_code
        assert second.instructions == first.instructions
        assert device_state(machine) == first_state

    def test_clint_timer_state_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.clint.mtime = 999
        machine.clint.mtimecmp = 0x1_0000_0001
        machine.clint.msip = 1
        snap = machine.snapshot()
        machine.run(max_instructions=100)
        machine.clint.msip = 0
        machine.restore(snap)
        assert machine.clint.mtime == 999
        assert machine.clint.mtimecmp == 0x1_0000_0001
        assert machine.clint.msip == 1

    def test_uart_rx_queue_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"queued")
        machine.uart.interrupt_enable = 1
        snap = machine.snapshot()
        machine.uart.load(0x04, 4)  # drain one RX byte
        machine.uart.interrupt_enable = 0
        machine.restore(snap)
        assert bytes(machine.uart._rx_queue) == b"queued"
        assert machine.uart.interrupt_enable == 1

    def test_exit_device_value_round_trips(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    li a0, 0" + EXIT,
                              isa=RV32IMC_ZICSR))
        machine.exit_device.value = 4  # even: latched but not terminating
        snap = machine.snapshot()
        machine.exit_device.value = 8
        machine.restore(snap)
        assert machine.exit_device.value == 4


class TestDeltaSnapshots:
    """Dirty-page delta chains: snapshot(parent=...) stores only pages
    written since the parent, and restore walks the chain in O(dirty)."""

    def make_machine(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(ALL_DEVICES, isa=RV32IMC_ZICSR))
        return machine

    def test_child_snapshot_stores_only_dirty_pages(self):
        machine = self.make_machine()
        base = machine.snapshot()
        assert base.ram is not None          # root is a full image
        machine.run(max_instructions=4)
        machine.ram.store(0x2000, 4, 0xCAFE)
        child = machine.snapshot(parent=base)
        assert child.ram is None             # delta node
        assert child.parent is base
        assert child.ram_pages is not None
        assert 0 < len(child.ram_pages) < machine.ram.page_count

    def test_page_bytes_walks_the_chain(self):
        machine = self.make_machine()
        base = machine.snapshot()
        machine.ram.store(0x2000, 4, 0x11223344)
        child = machine.snapshot(parent=base)
        page = 0x2000 // machine.ram.page_size
        assert child.page_bytes(page)[:4] == \
            (0x11223344).to_bytes(4, "little")
        # An untouched page resolves through to the root image.
        other = machine.ram.page_count - 1
        assert child.page_bytes(other) == base.page_bytes(other)

    def test_materialize_ram_equals_machine_ram(self):
        machine = self.make_machine()
        base = machine.snapshot()
        machine.ram.store(0x2000, 4, 0xAB)
        mid = machine.snapshot(parent=base)
        machine.ram.store(0x3000, 4, 0xCD)
        tip = machine.snapshot(parent=mid)
        assert tip.materialize_ram() == bytes(machine.ram.data)

    def test_delta_restore_round_trips(self):
        machine = self.make_machine()
        base = machine.snapshot()
        machine.run(max_instructions=8)
        mid_state = device_state(machine)
        mid_ram = bytes(machine.ram.data)
        mid = machine.snapshot(parent=base)
        machine.run()                        # run to exit, state diverges
        pages = machine.restore(mid)
        assert pages >= 0
        assert device_state(machine) == mid_state
        assert bytes(machine.ram.data) == mid_ram

    def test_restore_copies_only_divergent_pages(self):
        machine = self.make_machine()
        base = machine.snapshot()
        machine.ram.store(0x2000, 4, 1)
        tip = machine.snapshot(parent=base)
        machine.ram.store(0x4000, 4, 2)      # one page diverges
        pages = machine.restore(tip)
        assert pages < machine.ram.page_count   # not a full rewrite
        assert machine.ram.load(0x4000, 4) == 0
        assert machine.ram.load(0x2000, 4) == 1

    def test_foreign_snapshot_falls_back_to_full_restore(self):
        machine = self.make_machine()
        machine.ram.store(0x2000, 4, 7)
        donor = self.make_machine()
        donor.ram.store(0x3000, 4, 9)
        snap = donor.snapshot()
        machine.restore(snap)                # no shared epoch: full path
        assert bytes(machine.ram.data) == bytes(donor.ram.data)

    def test_restore_then_rerun_matches_direct_run(self):
        direct = self.make_machine()
        direct_result = direct.run()
        machine = self.make_machine()
        base = machine.snapshot()
        machine.run(max_instructions=6)
        machine.snapshot(parent=base)        # advance the epoch
        machine.restore(base)
        result = machine.run()
        assert result.stop_reason == direct_result.stop_reason
        assert result.instructions == direct_result.instructions
        assert device_state(machine) == device_state(direct)


# Long enough that a checkpoint at SPLIT lands mid-loop, and hot enough
# (40 iterations) that the compiled backend's JIT tier actually engages.
LOOPED = """
_start:
    li t2, 40
    li t0, 0
loop:
    addi t0, t0, 3
    slli t1, t0, 1
    xor t1, t1, t0
    addi t2, t2, -1
    bnez t2, loop
    li t3, 0x10000000      # UART: observable device side effect
    sw t1, 0(t3)
    li a0, 0
""" + EXIT


class TestDigestDeterminism:
    """A checkpoint/restore/resume cycle must be invisible to the
    verification subsystem's golden digest — the determinism contract
    the differential matrix's ``checkpoint`` axis rests on — on every
    execution backend."""

    BUDGET = 5_000
    SPLIT = 40

    def straight_digest(self, backend):
        from repro.verify import capture_state

        machine = self._machine(backend)
        machine.load(assemble(LOOPED, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=self.BUDGET)
        return capture_state(machine, result, machine.ram.dirty_pages())

    def _machine(self, backend):
        kwargs = {"isa": RV32IMC_ZICSR, "backend": backend}
        if backend == "compiled":
            kwargs["jit_threshold"] = 1   # promote immediately
        return Machine(MachineConfig(**kwargs))

    def resumed_digest(self, backend):
        from repro.verify import capture_state
        from repro.vp.cpu import STOP_MAX_INSNS

        # Snapshot the pristine machine *before* loading so the load
        # image itself counts toward the cumulative written-page set —
        # the same order ConfigRunner uses between corpus programs.
        machine = self._machine(backend)
        base = machine.snapshot()
        machine.load(assemble(LOOPED, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=self.SPLIT)
        pages = set(machine.ram.dirty_pages())
        if result.stop_reason == STOP_MAX_INSNS:
            snap = machine.snapshot(parent=base)
            machine.run(max_instructions=self.BUDGET, resume=True)
            pages |= machine.ram.dirty_pages()
            machine.restore(snap)
            result = machine.run(max_instructions=self.BUDGET, resume=True)
            pages |= machine.ram.dirty_pages()
        return capture_state(machine, result, pages)

    def assert_backend_deterministic(self, backend):
        from repro.verify import compare_digests

        straight = self.straight_digest(backend)
        resumed = self.resumed_digest(backend)
        assert compare_digests(straight, resumed) == []
        assert straight.hexdigest() == resumed.hexdigest()

    def test_interp_checkpoint_resume_digest_identical(self):
        self.assert_backend_deterministic("interp")

    def test_fastpath_checkpoint_resume_digest_identical(self):
        self.assert_backend_deterministic("fastpath")

    def test_compiled_checkpoint_resume_digest_identical(self):
        self.assert_backend_deterministic("compiled")

    def test_backends_agree_on_straight_digest(self):
        from repro.verify import compare_digests

        interp = self.straight_digest("interp")
        fastpath = self.straight_digest("fastpath")
        compiled = self.straight_digest("compiled")
        assert compare_digests(interp, fastpath) == []
        assert compare_digests(interp, compiled) == []
