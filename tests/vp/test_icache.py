"""Instruction-cache model tests."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import ICache, ICacheConfig, Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"

LOOP = """
_start:
    li t0, 0
    li t1, 50
loop:              # @loopbound 50
    addi t0, t0, 1
    blt t0, t1, loop
""" + EXIT


class TestConfigValidation:
    def test_defaults_consistent(self):
        config = ICacheConfig()
        assert config.num_sets * config.ways * config.line_size == config.size

    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError, match="power of two"):
            ICacheConfig(line_size=12)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError, match="multiple"):
            ICacheConfig(size=1000, line_size=16, ways=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ICacheConfig(miss_penalty=0)

    def test_lines_spanned(self):
        config = ICacheConfig(line_size=16)
        assert config.lines_spanned(0, 16) == 1
        assert config.lines_spanned(0, 17) == 2
        assert config.lines_spanned(8, 24) == 2
        assert config.lines_spanned(8, 8) == 0


class TestCacheBehaviour:
    def test_first_access_misses_second_hits(self):
        cache = ICache(ICacheConfig())
        assert not cache.access_line(5)
        assert cache.access_line(5)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 ways, force 3 lines into one set.
        config = ICacheConfig(size=64, line_size=16, ways=2)  # 2 sets
        cache = ICache(config)
        a, b, c = 0, 2, 4  # all map to set 0
        cache.access_line(a)
        cache.access_line(b)
        cache.access_line(c)   # evicts a (LRU)
        assert not cache.access_line(a)
        assert cache.access_line(c) or True  # c may have been evicted by a
        assert cache.misses >= 4

    def test_lru_refresh_on_hit(self):
        config = ICacheConfig(size=64, line_size=16, ways=2)
        cache = ICache(config)
        a, b, c = 0, 2, 4
        cache.access_line(a)
        cache.access_line(b)
        cache.access_line(a)   # refresh a
        cache.access_line(c)   # should evict b, not a
        assert cache.access_line(a)

    def test_penalty_for_range(self):
        config = ICacheConfig(line_size=16, miss_penalty=10)
        cache = ICache(config)
        assert cache.penalty_for_range(0x100, 0x120) == 20  # 2 cold lines
        assert cache.penalty_for_range(0x100, 0x120) == 0   # now warm

    def test_reset(self):
        cache = ICache(ICacheConfig())
        cache.access_line(1)
        cache.reset()
        assert cache.misses == 0
        assert not cache.access_line(1)

    def test_hit_rate(self):
        cache = ICache(ICacheConfig())
        assert cache.hit_rate == 0.0
        cache.access_line(1)
        cache.access_line(1)
        assert cache.hit_rate == 0.5


class TestVpIntegration:
    def run(self, icache):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, icache=icache))
        machine.load(assemble(LOOP, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=10_000)
        return machine, result

    def test_cache_off_by_default(self):
        machine = Machine()
        assert machine.cpu.icache is None

    def test_cache_adds_cycles(self):
        _m_off, off = self.run(None)
        _m_on, on = self.run(ICacheConfig(miss_penalty=10))
        assert on.instructions == off.instructions
        assert on.cycles > off.cycles

    def test_loop_warms_up(self):
        machine, _result = self.run(ICacheConfig(miss_penalty=10))
        cache = machine.cpu.icache
        # The loop body re-executes from a warm cache: hits dominate.
        assert cache.hit_rate > 0.9

    def test_reset_clears_cache(self):
        machine, _ = self.run(ICacheConfig())
        machine.reset()
        assert machine.cpu.icache.misses == 0


class TestWcetWithCache:
    def test_miss_always_bound_dominates(self):
        from repro.wcet import analyze_program

        config = ICacheConfig(miss_penalty=10)
        analysis = analyze_program(LOOP, icache=config)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles

    def test_cache_pessimism_larger_than_without(self):
        from repro.wcet import analyze_program

        plain = analyze_program(LOOP)
        cached = analyze_program(LOOP, icache=ICacheConfig(miss_penalty=10))
        plain_pess = plain.static_bound.cycles / plain.result.actual_cycles
        cached_pess = cached.static_bound.cycles / \
            cached.result.actual_cycles
        # Miss-always vs a warm loop: the cache is where pessimism lives.
        assert cached_pess > plain_pess
