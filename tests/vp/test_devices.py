"""Peripheral device tests: UART, CLINT, exit device."""

import pytest

from repro.isa import csr as csrdef
from repro.vp import BusError, MachineExit
from repro.vp.devices import Clint, ExitDevice, Uart
from repro.vp.devices.uart import RXDATA, STATUS, STATUS_RX_AVAIL, STATUS_TX_READY, TXDATA
from repro.vp.devices import clint as clint_regs


class TestUart:
    def test_tx_accumulates(self):
        uart = Uart()
        for ch in b"hi":
            uart.store(TXDATA, 1, ch)
        assert uart.output == "hi"
        assert uart.tx_log == b"hi"

    def test_tx_masks_to_byte(self):
        uart = Uart()
        uart.store(TXDATA, 4, 0x141)
        assert uart.tx_log == b"\x41"

    def test_rx_queue(self):
        uart = Uart()
        uart.push_rx(b"ab")
        assert uart.load(RXDATA, 4) == ord("a")
        assert uart.load(RXDATA, 4) == ord("b")
        assert uart.load(RXDATA, 4) == 0xFFFFFFFF  # empty

    def test_status_bits(self):
        uart = Uart()
        assert uart.load(STATUS, 4) == STATUS_TX_READY
        uart.push_rx(b"x")
        assert uart.load(STATUS, 4) == STATUS_TX_READY | STATUS_RX_AVAIL

    def test_unknown_register_raises(self):
        with pytest.raises(BusError):
            Uart().load(0x40, 4)
        with pytest.raises(BusError):
            Uart().store(0x40, 4, 0)

    def test_writes_to_readonly_ignored(self):
        uart = Uart()
        uart.store(STATUS, 4, 0xFF)
        assert uart.load(STATUS, 4) == STATUS_TX_READY

    def test_access_trace(self):
        uart = Uart(trace=True)
        uart.store(TXDATA, 1, 0x41)
        uart.load(STATUS, 4)
        assert uart.access_log[0] == ("store", TXDATA, 0x41)
        assert uart.access_log[1][0] == "load"

    def test_trace_disabled_by_default(self):
        uart = Uart()
        uart.store(TXDATA, 1, 0x41)
        assert not uart.access_log


class TestClint:
    def test_mtime_advances_with_tick(self):
        clint = Clint()
        clint.tick(10)
        clint.tick(5)
        assert clint.mtime == 15

    def test_timer_pending_when_expired(self):
        clint = Clint()
        clint.mtimecmp = 10
        clint.tick(9)
        assert clint.pending_interrupts() == 0
        clint.tick(1)
        assert clint.pending_interrupts() & csrdef.MIE_MTIE

    def test_software_interrupt(self):
        clint = Clint()
        clint.store(clint_regs.MSIP, 4, 1)
        assert clint.pending_interrupts() & csrdef.MIE_MSIE
        clint.store(clint_regs.MSIP, 4, 0)
        assert clint.pending_interrupts() == 0

    def test_msip_only_bit0(self):
        clint = Clint()
        clint.store(clint_regs.MSIP, 4, 0xFE)
        assert clint.load(clint_regs.MSIP, 4) == 0

    def test_mtimecmp_64bit_access(self):
        clint = Clint()
        clint.store(clint_regs.MTIMECMP_LO, 4, 0x1234)
        clint.store(clint_regs.MTIMECMP_HI, 4, 0x1)
        assert clint.mtimecmp == 0x1_0000_1234
        assert clint.load(clint_regs.MTIMECMP_LO, 4) == 0x1234
        assert clint.load(clint_regs.MTIMECMP_HI, 4) == 1

    def test_mtime_readable_and_writable(self):
        clint = Clint()
        clint.store(clint_regs.MTIME_LO, 4, 100)
        assert clint.load(clint_regs.MTIME_LO, 4) == 100
        clint.store(clint_regs.MTIME_HI, 4, 2)
        assert clint.mtime == (2 << 32) | 100

    def test_cycles_until_timer(self):
        clint = Clint()
        clint.mtimecmp = 50
        clint.tick(20)
        assert clint.cycles_until_timer() == 30
        clint.tick(40)
        assert clint.cycles_until_timer() == 0

    def test_no_interrupt_by_default(self):
        # mtimecmp resets to the maximum: a fresh CLINT never fires.
        clint = Clint()
        clint.tick(1_000_000)
        assert clint.pending_interrupts() == 0

    def test_unknown_register_raises(self):
        with pytest.raises(BusError):
            Clint().load(0x8, 4)


class TestExitDevice:
    def test_odd_write_exits(self):
        dev = ExitDevice()
        with pytest.raises(MachineExit) as info:
            dev.store(0, 4, (42 << 1) | 1)
        assert info.value.code == 42

    def test_pass_code(self):
        with pytest.raises(MachineExit) as info:
            ExitDevice().store(0, 4, 1)
        assert info.value.code == 0

    def test_even_write_does_not_exit(self):
        dev = ExitDevice()
        dev.store(0, 4, 4)
        assert dev.load(0, 4) == 4

    def test_bad_offset(self):
        with pytest.raises(BusError):
            ExitDevice().store(4, 4, 1)
