"""Machine, plugin-table, and CPU corner-case tests."""

import pytest

from repro.asm import Program, assemble
from repro.isa import RV32IMC_ZICSR
from repro.isa import csr as csrdef
from repro.vp import (
    BusError,
    Machine,
    MachineConfig,
    Plugin,
    RAM_BASE,
)
from repro.vp.cpu import LIVELOCK_LIMIT, STOP_LIVELOCK
from repro.vp.plugins import HookTable

EXIT = "\n    li a7, 93\n    ecall\n"


class TestLoader:
    def test_load_blob_default_entry(self):
        machine = Machine()
        machine.load_blob(b"\x13\x00\x00\x00")
        assert machine.cpu.pc == RAM_BASE

    def test_load_blob_custom_entry(self):
        machine = Machine()
        machine.load_blob(b"\x13\x00\x00\x00" * 4, entry=RAM_BASE + 8)
        assert machine.cpu.pc == RAM_BASE + 8

    def test_load_outside_ram_fails(self):
        machine = Machine()
        program = Program(segments=[(0x1000, b"\x13\x00\x00\x00")],
                          entry=0x1000)
        with pytest.raises(BusError):
            machine.load(program)

    def test_load_sets_stack_pointer(self):
        machine = Machine()
        machine.load(assemble("_start: nop" + EXIT, isa=RV32IMC_ZICSR))
        sp = machine.cpu.regs.raw_read(2)
        assert sp == RAM_BASE + machine.config.ram_size - 16

    def test_reload_resets_counters(self):
        machine = Machine()
        program = assemble("_start: nop" + EXIT, isa=RV32IMC_ZICSR)
        machine.load(program)
        machine.run(max_instructions=100)
        machine.load(program)
        assert machine.cpu.csrs.instret == 0
        assert machine.cpu.csrs.cycle == 0


class TestLivelockDetection:
    def test_trap_storm_stops_with_livelock(self):
        # mtvec pointing at an illegal word: every trap re-traps without
        # retiring anything.
        machine = Machine()
        machine.load(assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
            .word 0xFFFFFFFF
        .align 2
        handler:
            .word 0xFFFFFFFF
        """, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=1_000_000)
        assert result.stop_reason == STOP_LIVELOCK
        assert result.trap_cause == csrdef.CAUSE_ILLEGAL_INSTRUCTION

    def test_livelock_limit_is_bounded(self):
        assert LIVELOCK_LIMIT <= 1000  # detection must be prompt


class TestHookTable:
    class _Full(Plugin):
        def on_insn_exec(self, cpu, decoded, pc):
            pass

        def on_mem_access(self, cpu, addr, width, value, is_store):
            pass

    def test_only_overridden_hooks_collected(self):
        table = HookTable()
        table.register(self._Full())
        assert len(table.insn_exec) == 1
        assert len(table.mem_access) == 1
        assert table.block_exec == []
        assert table.trap == []

    def test_unregister_removes_all_hooks(self):
        table = HookTable()
        plugin = self._Full()
        table.register(plugin)
        table.unregister(plugin)
        assert table.insn_exec == []
        assert table.mem_access == []
        assert table.plugins == []

    def test_unregister_unknown_plugin_raises(self):
        with pytest.raises(ValueError, match="not registered"):
            HookTable().unregister(self._Full())

    def test_base_plugin_registers_nothing(self):
        table = HookTable()
        table.register(Plugin())
        assert not any([table.insn_exec, table.mem_access,
                        table.block_exec, table.block_translate,
                        table.trap, table.exit])

    def test_multiple_plugins_ordered(self):
        calls = []

        class A(Plugin):
            def on_insn_exec(self, cpu, decoded, pc):
                calls.append("a")

        class B(Plugin):
            def on_insn_exec(self, cpu, decoded, pc):
                calls.append("b")

        machine = Machine()
        machine.add_plugin(A())
        machine.add_plugin(B())
        machine.load(assemble("_start: nop" + EXIT, isa=RV32IMC_ZICSR))
        machine.run(max_instructions=1)
        assert calls[:2] == ["a", "b"]


class TestCampaignTargetTable:
    def test_target_table_renders_all_targets(self):
        from repro.faultsim import (Fault, FaultCampaign, STUCK_AT_1,
                                    TARGET_CODE, TARGET_GPR)

        program = assemble("_start:\n    li a0, 0" + EXIT,
                           isa=RV32IMC_ZICSR)
        campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
        faults = [
            Fault(TARGET_GPR, 10, 3, STUCK_AT_1),
            Fault(TARGET_GPR, 25, 3, STUCK_AT_1),
            Fault(TARGET_CODE, RAM_BASE + 1, 2, STUCK_AT_1),
        ]
        result = campaign.run(faults)
        table = result.target_table()
        assert "gpr" in table and "code" in table
        breakdown = result.breakdown_by_target()
        assert sum(sum(row.values()) for row in breakdown.values()) == 3


class TestAssemblerCorners:
    def test_csr_by_numeric_address(self):
        program = assemble("_start: csrrw a0, 0x340, a1" + EXIT,
                           isa=RV32IMC_ZICSR)
        machine = Machine()
        machine.load(program)
        machine.cpu.regs.raw_write(11, 77)
        machine.run(max_instructions=10)
        assert machine.cpu.csrs.raw_read(0x340) == 77

    def test_balign_directive(self):
        program = assemble(".data\n.byte 1\n.balign 8\nv: .word 2",
                           isa=RV32IMC_ZICSR)
        assert program.symbols["v"] % 8 == 0

    def test_stdin_style_blank_program_rejected_cleanly(self):
        from repro.asm import AsmError

        program = assemble("", isa=RV32IMC_ZICSR)
        assert program.segments == []
        with pytest.raises(ValueError):
            _ = program.text_segment
