"""Timing model tests, including the WCET-soundness invariant."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Decoder, RV32IMCF_ZICSR
from repro.vp.timing import (
    CLASS_ALU,
    CLASS_BRANCH,
    CLASS_DIV,
    CLASS_JUMP,
    CLASS_LOAD,
    CLASS_MUL,
    CLASS_STORE,
    TimingModel,
    classify,
)

DEC = Decoder(RV32IMCF_ZICSR)


def decoded(name, word=None):
    spec = DEC.spec_by_name[name]
    return DEC.decode(word if word is not None else _sample_word(spec))


def _sample_word(spec):
    # A decodable representative: the match with safe operand bits.
    if spec.name == "c.addi4spn":
        return spec.match | (1 << 6)  # nonzero nzuimm
    return spec.match


class TestClassification:
    @pytest.mark.parametrize("name,expected", [
        ("add", CLASS_ALU), ("addi", CLASS_ALU), ("lui", CLASS_ALU),
        ("mul", CLASS_MUL), ("mulhu", CLASS_MUL),
        ("div", CLASS_DIV), ("remu", CLASS_DIV),
        ("lw", CLASS_LOAD), ("lbu", CLASS_LOAD), ("c.lw", CLASS_LOAD),
        ("sw", CLASS_STORE), ("c.swsp", CLASS_STORE),
        ("beq", CLASS_BRANCH), ("c.beqz", CLASS_BRANCH),
        ("jal", CLASS_JUMP), ("jalr", CLASS_JUMP), ("c.j", CLASS_JUMP),
        ("mret", CLASS_JUMP),
    ])
    def test_classes(self, name, expected):
        assert classify(DEC.spec_by_name[name]) == expected

    def test_every_spec_classifiable(self):
        model = TimingModel()
        for spec in DEC.specs:
            assert model.class_costs[classify(spec)] >= 1


class TestCosts:
    def test_defaults(self):
        model = TimingModel()
        assert model.base_cost(decoded("add")) == 1
        assert model.base_cost(decoded("div")) == 34
        assert model.base_cost(decoded("lw")) == 2

    def test_taken_penalty_applied(self):
        model = TimingModel()
        branch = decoded("beq")
        assert model.actual_cost(branch, redirected=True) == \
            model.base_cost(branch) + 2
        assert model.actual_cost(branch, redirected=False) == \
            model.base_cost(branch)

    def test_worst_cost_includes_penalty_for_control_flow(self):
        model = TimingModel()
        assert model.worst_cost(decoded("beq")) == 3
        assert model.worst_cost(decoded("jal")) == 3
        assert model.worst_cost(decoded("add")) == 1

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(class_costs={CLASS_ALU: 0})
        with pytest.raises(ValueError):
            TimingModel(taken_penalty=-1)

    def test_cost_cache_consistency(self):
        model = TimingModel()
        d = decoded("mul")
        assert model.base_cost(d) == model.base_cost(d)


class TestSoundnessInvariant:
    """worst_cost must dominate actual_cost for every instruction."""

    @pytest.mark.parametrize("spec", DEC.specs, ids=lambda s: s.name)
    def test_worst_dominates_actual(self, spec):
        model = TimingModel()
        # Overlapping encodings may decode the sample word to a more
        # specific spec (e.g. c.jalr's match is c.ebreak); judge by what
        # actually decoded.
        d = DEC.decode(_sample_word(spec))
        for redirected in (False, True):
            if redirected and not (d.spec.is_branch or d.spec.is_jump):
                continue  # only control flow redirects architecturally
            assert model.worst_cost(d) >= model.actual_cost(d, redirected)

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=10))
    def test_holds_for_arbitrary_models(self, alu_cost, penalty):
        model = TimingModel(class_costs={
            CLASS_ALU: alu_cost, "mul": 3, "div": 34, "load": 2,
            "store": 2, "branch": 1, "jump": 1, "csr": 1, "system": 1,
        }, taken_penalty=penalty)
        branch = decoded("beq")
        assert model.worst_cost(branch) >= model.actual_cost(branch, True)
        assert model.worst_cost(branch) >= model.actual_cost(branch, False)
