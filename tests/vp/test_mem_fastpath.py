"""RAM fast-path window and trace invalidation regressions.

The CPU caches one ``(base, end, buffer)`` window over the first plain
:class:`~repro.vp.memory.Ram` region and serves aligned loads/stores
straight from the buffer — in :meth:`Cpu.load`/:meth:`Cpu.store` and in
JIT-generated code alike.  These tests pin the invalidation contract:
every event that changes what an address means (device replacement,
snapshot restore) must be visible to the very next access, including
from already-compiled blocks and traces (stale *view*), and a
translation-cache flush must tear down compiled traces so patched code
never executes stale semantics (stale *code*).  The dirty-page side of
the contract — the fast path marks pages inline, keeping
``Ram.dirty_pages()`` exact — is what lets the checkpointed fault
campaigns below classify identically on every backend.
"""

import pytest

from repro.asm import assemble
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.faultsim.injector import StuckRamWrapper
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig
from repro.vp.machine import CLINT_BASE, RAM_BASE
from repro.vp.trap import Trap

ADDR = RAM_BASE + 0x200


def make_machine(backend="interp", **kwargs):
    return Machine(MachineConfig(isa=RV32IMC_ZICSR, backend=backend,
                                 **kwargs))


# ---------------------------------------------------------------------------
# Window mechanics in Cpu.load / Cpu.store
# ---------------------------------------------------------------------------

def test_ram_access_takes_fast_path_and_marks_dirty():
    machine = make_machine()
    cpu = machine.cpu
    cpu.store(ADDR, 4, 0xDEADBEEF)
    assert cpu.load(ADDR, 4) == 0xDEADBEEF
    assert (cpu.mem_fast_loads, cpu.mem_fast_stores) == (1, 1)
    assert (cpu.mem_bus_loads, cpu.mem_bus_stores) == (0, 0)
    page = (ADDR - RAM_BASE) // machine.ram.page_size
    assert page in machine.ram.dirty_pages()


def test_subword_and_signed_window_access():
    cpu = make_machine().cpu
    cpu.store(ADDR, 1, 0x80)
    cpu.store(ADDR + 2, 2, 0xFFFE)
    assert cpu.load(ADDR, 1) == 0x80
    assert cpu.load(ADDR, 1, signed=True) & 0xFFFFFFFF == 0xFFFFFF80
    assert cpu.load(ADDR + 2, 2, signed=True) & 0xFFFFFFFF == 0xFFFFFFFE
    # The word read sees both sub-word stores merged in the buffer.
    assert cpu.load(ADDR, 4) == 0xFFFE0080


def test_mmio_still_dispatches_through_the_bus():
    cpu = make_machine().cpu
    cpu.load(CLINT_BASE + 0xBFF8, 4)  # mtime
    assert cpu.mem_bus_loads == 1
    assert cpu.mem_fast_loads == 0


def test_misaligned_access_traps_before_the_window():
    cpu = make_machine().cpu
    with pytest.raises(Trap):
        cpu.load(ADDR + 1, 4)
    with pytest.raises(Trap):
        cpu.store(ADDR + 1, 2, 0)
    assert cpu.mem_fast_loads == cpu.mem_bus_loads == 0


def test_window_does_not_extend_past_ram_end():
    machine = make_machine()
    cpu = machine.cpu
    end = RAM_BASE + machine.ram.size
    assert cpu.load(end - 4, 4) == 0  # last word: in the window
    assert cpu.mem_fast_loads == 1
    with pytest.raises(Trap):
        cpu.load(end, 4)  # first address past RAM: bus fallback faults


# ---------------------------------------------------------------------------
# Stale view: the window must die with the mapping
# ---------------------------------------------------------------------------

def test_replace_invalidates_the_cached_window():
    machine = make_machine()
    cpu = machine.cpu
    cpu.store(ADDR, 4, 0)
    assert cpu.mem_fast_stores == 1  # window is primed
    wrapper = StuckRamWrapper(machine.ram, offset=ADDR - RAM_BASE,
                              mask=0x01, stuck_one=True)
    machine.bus.replace(RAM_BASE, wrapper)
    # The wrapper is a Device, not a Ram: the refreshed window is empty
    # and the very next access must see the stuck bit via the bus.
    assert cpu.load(ADDR, 4) == 1
    assert cpu.mem_bus_loads == 1


def test_restore_rebinds_the_window():
    machine = make_machine()
    cpu = machine.cpu
    cpu.store(ADDR, 4, 0x1111)
    snap = machine.snapshot()
    cpu.store(ADDR, 4, 0x2222)
    machine.restore(snap)
    assert cpu.load(ADDR, 4) == 0x1111
    assert cpu.mem_fast_loads == 1  # served from the (re-derived) window
    assert machine.ram.dirty_pages() == set()


def test_page_rewrites_stay_visible_through_the_window():
    """write_page / load_image / fill mutate the buffer in place, so a
    primed window keeps reading the live bytes with no invalidation."""
    machine = make_machine()
    cpu = machine.cpu
    assert cpu.load(ADDR, 4) == 0  # prime the window
    machine.ram.write_page(0, b"\x7f" * machine.ram.page_size)
    assert cpu.load(RAM_BASE, 4) == 0x7F7F7F7F
    machine.ram.fill(0xAB)
    assert cpu.load(ADDR, 4) == 0xABABABAB
    assert cpu.mem_bus_loads == 0


# ---------------------------------------------------------------------------
# Stale view / stale code from compiled traces
# ---------------------------------------------------------------------------

#: Two translation blocks of dense RAM traffic: hot enough to compile
#: and fuse into one trace within a few hundred instructions.
HOT_MEMORY_LOOP = """
_start:
    la s0, scratch
    li t0, 0
    li t1, {iters}
    li a0, 0
loop:
""" + "\n".join(
    f"    lw t2, {(k % 8) * 4}(s0)\n"
    "    add a0, a0, t2\n"
    "    xor t2, t2, t0\n"
    f"    sw t2, {(k % 8) * 4}(s0)"
    for k in range(10)) + """
    addi t0, t0, 1
    blt t0, t1, loop
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""


def hot_machine(backend):
    machine = make_machine(backend=backend, jit_threshold=2,
                           jit_trace_threshold=4)
    machine.load(assemble(HOT_MEMORY_LOOP.format(iters=400),
                          isa=RV32IMC_ZICSR))
    return machine


def digest(machine):
    return (tuple(machine.cpu.regs.snapshot()), machine.cpu.pc,
            machine.cpu.csrs.instret, machine.cpu.csrs.cycle,
            tuple(sorted(machine.ram.dirty_pages())))


def test_replace_disables_fast_path_in_live_trace():
    """A device swap mid-run must reach code that is *already* compiled:
    the generated functions re-check the window binding at entry, so the
    very next trace execution falls back to bus dispatch."""
    outcomes = {}
    for backend in ("interp", "compiled"):
        machine = hot_machine(backend)
        first = machine.run(max_instructions=5_000)
        assert first.stop_reason == "max_insns"
        if backend == "compiled":
            assert machine.jit_stats()["traces_compiled"] >= 1
        # Stuck bit parked in untouched RAM: the point is the bus
        # fallback after the swap, not the corruption itself (a stuck
        # code byte would derail fetch on both backends alike).
        wrapper = StuckRamWrapper(machine.ram, offset=0x10_0000,
                                  mask=0x01, stuck_one=True)
        machine.bus.replace(RAM_BASE, wrapper)
        bus_loads = machine.cpu.mem_bus_loads
        trace_retired = (machine.jit_stats()["trace_instructions"]
                         if backend == "compiled" else 0)
        second = machine.run(max_instructions=5_000_000)
        assert second.stop_reason == "exit"
        if backend == "compiled":
            stats = machine.jit_stats()
            # The trace kept running (no teardown needed) ...
            assert stats["trace_instructions"] > trace_retired
        # ... but every RAM access after the swap went through the bus.
        assert machine.cpu.mem_bus_loads > bus_loads
        outcomes[backend] = ((first.instructions, second.instructions,
                              second.exit_code), digest(machine))
    assert outcomes["compiled"] == outcomes["interp"]


def test_flush_tears_down_stale_traces():
    """Code patching: flushing the translation cache discards the member
    blocks (and with them the trace), so patched bytes retranslate."""
    outcomes = {}
    for backend in ("interp", "compiled"):
        machine = hot_machine(backend)
        first = machine.run(max_instructions=5_000)
        if backend == "compiled":
            assert machine.jit_stats()["traces_compiled"] >= 1
            head = next(block for block in
                        machine.cpu._tb_cache.values()
                        if block.trace is not None)
            assert head.trace_token is not None
        # Patch the loop-counter increment ``addi t0, t0, 1`` to step by
        # 2 (halving the remaining iterations) and flush, as fence.i
        # would.  The instruction is located by its encoding — word or
        # compressed, whichever the assembler emitted — and must be
        # unique in the image so the patch lands on the intended site.
        image = machine.ram.read_bytes(0, 4096)
        old32 = ((1 << 20) | (5 << 15) | (5 << 7) | 0x13).to_bytes(
            4, "little")
        old16 = (0x0285).to_bytes(2, "little")  # c.addi t0, 1
        if image.count(old32) == 1:
            patch_addr = image.index(old32)
            patch = ((2 << 20) | (5 << 15) | (5 << 7) | 0x13).to_bytes(
                4, "little")
        else:
            assert image.count(old16) == 1, "cannot locate loop addi"
            patch_addr = image.index(old16)
            patch = (0x0289).to_bytes(2, "little")  # c.addi t0, 2
        machine.ram.write_bytes(patch_addr, patch)
        machine.cpu.flush_translation_cache()
        assert not machine.cpu._tb_cache  # trace died with its blocks
        second = machine.run(max_instructions=5_000_000)
        assert second.stop_reason == "exit"
        outcomes[backend] = ((first.instructions, second.instructions,
                              second.exit_code), digest(machine))
    assert outcomes["compiled"] == outcomes["interp"]


# ---------------------------------------------------------------------------
# Checkpointed fault campaigns classify identically on every backend
# ---------------------------------------------------------------------------

def test_checkpointed_campaign_parity_across_backends():
    """Byte-identical classifications, compiled vs interp, with warm
    checkpoints on — the campaign engine leans on ``dirty_pages()``
    for delta snapshots, so this exercises the inline dirty marking
    under real restore traffic."""
    program = assemble(HOT_MEMORY_LOOP.format(iters=40), isa=RV32IMC_ZICSR)
    budget = MutantBudget(code=8, gpr_transient=8, gpr_stuck=4,
                          memory_transient=6, memory_stuck=4)
    faults = generate_mutants(program, budget=budget,
                              golden_instructions=1_700, seed=11)
    assert faults
    outcomes = {}
    for backend in ("interp", "compiled"):
        campaign = FaultCampaign(program, isa=RV32IMC_ZICSR,
                                 backend=backend, checkpoints=True)
        result = campaign.run(faults)
        outcomes[backend] = (
            campaign.golden(),
            [(r.fault, r.outcome, r.exit_code, r.trap_cause,
              r.instructions) for r in result.results])
    assert outcomes["compiled"] == outcomes["interp"]
