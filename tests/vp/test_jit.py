"""The template JIT itself: codegen shapes, tiering, cache hygiene.

The backend parity suite (``test_backend_parity.py``) proves the
compiled tier is architecturally invisible; this module tests the JIT's
own machinery — which codegen shape a block gets, when a block is
promoted, what invalidates compiled code, and that stale functions can
never run after a translation-cache flush.
"""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig
from repro.vp.jit import CompiledBackend, DEFAULT_THRESHOLD
from repro.vp.jit.compiler import CompileError

from ..conftest import run_asm


def compiled_machine(threshold=1, **kwargs):
    return Machine(MachineConfig(isa=RV32IMC_ZICSR, backend="compiled",
                                 jit_threshold=threshold, **kwargs))


def compiled_blocks(machine):
    return {pc: block for pc, block in machine.cpu._tb_cache.items()
            if block.compiled is not None}


HOT_LOOP = """
_start:
    li t0, 0
    li t1, 300
loop:
    add a0, a0, t0
    xor a1, a1, a0
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""

MEM_LOOP = """
_start:
    la s0, scratch
    li t0, 0
    li t1, 100
loop:
    sw t0, 0(s0)
    lw t2, 0(s0)
    add a0, a0, t2
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
.data
scratch: .word 0
"""


# ----------------------------------------------------------------------
# Tiering
# ----------------------------------------------------------------------

def test_blocks_promote_at_threshold():
    machine, result = run_asm(HOT_LOOP, backend="compiled",
                              jit_threshold=8)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["blocks_compiled"] >= 1
    # Warm-up iterations run in the interpreter tier first.
    assert stats["interp_instructions"] > 0
    assert stats["compiled_instructions"] > stats["interp_instructions"]


def test_default_threshold_is_documented_value():
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, backend="compiled"))
    assert isinstance(machine.cpu.backend, CompiledBackend)
    assert machine.cpu.backend.threshold == DEFAULT_THRESHOLD == 8


def test_cold_blocks_stay_interpreted():
    # Threshold higher than any block's execution count: nothing compiles.
    machine, result = run_asm(HOT_LOOP, backend="compiled",
                              jit_threshold=10_000)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["blocks_compiled"] == 0
    assert stats["compiled_instructions"] == 0


# ----------------------------------------------------------------------
# Codegen shapes
# ----------------------------------------------------------------------

def _sources(machine):
    return [block.compiled.__jit_source__
            for block in compiled_blocks(machine).values()]


def test_fused_batched_shape_for_pure_alu_self_loop():
    machine, result = run_asm(HOT_LOOP, backend="compiled", jit_threshold=1)
    assert result.stop_reason == "exit"
    sources = _sources(machine)
    batched = [src for src in sources if "_horizon(" in src]
    assert batched, "pure-ALU self-loop should take the batched fused shape"
    # The batched loop polls between batches, not per iteration.
    assert "_batch_safe(" in batched[0]


def test_fused_polling_shape_for_memory_self_loop():
    machine, result = run_asm(MEM_LOOP, backend="compiled", jit_threshold=1)
    assert result.stop_reason == "exit"
    sources = _sources(machine)
    loop_sources = [src for src in sources if "while True" in src]
    assert loop_sources, "self-loop should take a fused shape"
    for src in loop_sources:
        # Memory-touching bodies must re-poll every iteration — batching
        # would freeze device state the loop can observe.
        assert "_horizon(" not in src


def test_method_shape_when_hooks_attached():
    from repro.vp import Plugin

    class Hook(Plugin):
        name = "jit-hook"

        def __init__(self):
            self.count = 0

        def on_insn_exec(self, cpu, decoded, pc):
            self.count += 1

    machine = compiled_machine()
    program = assemble(HOT_LOOP, isa=RV32IMC_ZICSR)
    machine.load(program)
    hook = machine.add_plugin(Hook())
    result = machine.run(max_instructions=100_000)
    assert result.stop_reason == "exit"
    # The exiting ecall fires its hook but does not retire — same as the
    # interpreter (see test_backend_parity for the cross-backend proof).
    assert hook.count == result.instructions + 1
    # Hooked code still compiles (method shape), and every compiled
    # source carries the hook dispatch.
    stats = machine.jit_stats()
    assert stats["blocks_compiled"] >= 1
    assert all("HI" in src or "hook" in src for src in _sources(machine))


def test_jit_source_attached_for_introspection():
    machine, _ = run_asm(HOT_LOOP, backend="compiled", jit_threshold=1)
    for block in compiled_blocks(machine).values():
        src = block.compiled.__jit_source__
        assert src.startswith("def _tb")
        # The code object's filename carries the block address, so
        # tracebacks through compiled code are attributable.
        assert f"{block.start_pc:#x}" in block.compiled.__code__.co_filename


# ----------------------------------------------------------------------
# Cache hygiene
# ----------------------------------------------------------------------

def _run_twice_with_patch(backend):
    """Run a counting loop, patch its stride from 1 to 2 in RAM, flush,
    run again from the entry point.  Returns both final a0 values."""
    source = """
    _start:
        li t0, 0
        li a0, 0
        li t1, 200
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        mv a0, t0
        li a7, 93
        li a0, 0
        ecall
    """
    program = assemble(source, isa=RV32IMC_ZICSR)
    patched = assemble(source.replace("addi t0, t0, 1", "addi t0, t0, 2"),
                       isa=RV32IMC_ZICSR)
    kwargs = {"backend": backend}
    if backend == "compiled":
        kwargs["jit_threshold"] = 1
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, **kwargs))
    machine.load(program)
    first = machine.run(max_instructions=10_000)
    assert first.stop_reason == "exit"
    # Self-modifying store: overwrite the whole text image with the
    # patched encoding, then flush — the contract for SMC.
    base, blob = patched.text_segment
    for offset in range(0, len(blob), 4):
        word = int.from_bytes(blob[offset:offset + 4], "little")
        machine.cpu.bus.store(base + offset, 4, word)
    machine.cpu.flush_translation_cache()
    assert not machine.cpu._tb_cache
    machine.cpu.pc = program.entry
    second = machine.run(max_instructions=10_000)
    assert second.stop_reason == "exit"
    return first.instructions, second.instructions


def test_smc_flush_never_runs_stale_compiled_code():
    interp = _run_twice_with_patch("interp")
    compiled = _run_twice_with_patch("compiled")
    assert compiled == interp
    # The patched loop strides by 2 — half the iterations.  If the stale
    # compiled block survived the flush, the second run's delta would
    # match the first run's count instead.  (``instructions`` accumulates
    # across run calls.)
    assert compiled[1] - compiled[0] < compiled[0]


def test_clear_on_full_drops_compiled_blocks():
    # A tiny cache cap forces wholesale clear-on-full flushes while the
    # loop blocks are hot and compiled.
    source = """
    _start:
        li t0, 0
        li t1, 50
    loop:
        addi t0, t0, 1
        beq t0, t1, out
        addi a1, a1, 2
        addi a2, a2, 3
        j loop
    out:
        li a0, 0
        li a7, 93
        ecall
    """
    machine, result = run_asm(source, backend="compiled", jit_threshold=1,
                              tb_cache_max_blocks=2)
    assert result.stop_reason == "exit"
    assert machine.cpu.tb_flushes >= 1
    reference_machine, reference = run_asm(source)
    assert (result.instructions, result.cycles) == \
        (reference.instructions, reference.cycles)
    assert machine.cpu.regs.snapshot() == \
        reference_machine.cpu.regs.snapshot()


def test_hook_attach_invalidates_compiled_code():
    from repro.vp import Plugin

    class Hook(Plugin):
        name = "late-hook"

        def __init__(self):
            self.count = 0

        def on_insn_exec(self, cpu, decoded, pc):
            self.count += 1

    def run(backend):
        kwargs = {"backend": backend}
        if backend == "compiled":
            kwargs["jit_threshold"] = 1
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, **kwargs))
        machine.load(assemble(HOT_LOOP, isa=RV32IMC_ZICSR))
        first = machine.run(max_instructions=300)
        hook = machine.add_plugin(Hook())
        second = machine.run(max_instructions=100_000)
        return first.instructions, second.instructions, hook.count

    assert run("compiled") == run("interp")


def test_compile_failure_blacklists_block():
    machine = compiled_machine()
    machine.load(assemble(HOT_LOOP, isa=RV32IMC_ZICSR))
    # Force _refresh to build the compiler, then sabotage it.
    machine.run(max_instructions=1)
    backend = machine.cpu.backend

    class Broken:
        direct = True  # _refresh reads the trace-eligibility shape
        hb = False

        def compile(self, block):
            raise CompileError("forced failure")

        def compile_trace(self, blocks):
            raise CompileError("forced failure")

    backend._compiler = Broken()
    before = machine.jit_stats()["blocks_compiled"]
    result = machine.run(max_instructions=100_000)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    # Nothing new compiles once the compiler only raises.
    assert stats["blocks_compiled"] == before
    # Each block fails once, is blacklisted, and never retried — the
    # failure count stays at the number of distinct hot blocks.
    assert 0 < stats["compile_failures"] <= len(machine.cpu._tb_cache) + 1
    assert backend._no_compile
    reference = run_asm(HOT_LOOP)[1]
    assert (result.instructions, result.cycles) == \
        (reference.instructions, reference.cycles)


def test_icache_disables_compiled_tier():
    from repro.vp import ICacheConfig

    machine, result = run_asm(HOT_LOOP, backend="compiled", jit_threshold=1,
                              icache=ICacheConfig())
    assert result.stop_reason == "exit"
    assert machine.jit_stats()["blocks_compiled"] == 0


# ----------------------------------------------------------------------
# Interrupts inside the batched fused loop
# ----------------------------------------------------------------------

TIMER_SPIN = """
_start:
    la t0, handler
    csrw mtvec, t0
    li t0, 0x0200BFF8
    lw t1, 0(t0)
    li t2, {delta}
    add t1, t1, t2
    li t0, 0x02004000
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t0, 0x80
    csrw mie, t0
    li s2, 1
    csrsi mstatus, 8
spin:
    addi s0, s0, 1
    xor s1, s1, s0
    blt zero, s2, spin
handler:
    csrr a0, mcause
    li a7, 93
    ecall
"""


@pytest.mark.parametrize("delta", [3, 7, 50, 51, 52, 400, 1001])
def test_timer_interrupt_lands_identically_in_batched_loop(delta):
    """The batched fused loop must take the timer trap on the same
    instruction, with the same counters, as the interpreter — the
    timer-horizon computation caps each batch exactly at the firing
    point."""
    def run(backend):
        kwargs = {"backend": backend}
        if backend == "compiled":
            kwargs["jit_threshold"] = 1
        machine, result = run_asm(TIMER_SPIN.format(delta=delta),
                                  max_instructions=100_000, **kwargs)
        return (result.stop_reason, result.exit_code, result.instructions,
                result.cycles, machine.cpu.regs.snapshot(),
                machine.cpu.csrs.read(0x342),   # mcause
                machine.cpu.csrs.read(0x341))   # mepc

    compiled = run("compiled")
    assert compiled == run("interp")
    assert compiled[5] == 0x80000007  # machine timer interrupt


def test_budget_split_parity():
    """Identical run-call split patterns retire identically across
    backends (budget overshoot is per-call, at block granularity)."""
    splits = (7, 93, 1000, 900, 50_000)

    def run(backend):
        kwargs = {"backend": backend}
        if backend == "compiled":
            kwargs["jit_threshold"] = 1
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, **kwargs))
        machine.load(assemble(HOT_LOOP, isa=RV32IMC_ZICSR))
        outcomes = []
        for budget in splits:
            result = machine.run(max_instructions=budget)
            outcomes.append((result.stop_reason, result.instructions,
                             result.cycles, machine.cpu.pc))
        return outcomes

    assert run("compiled") == run("fastpath") == run("interp")


# ----------------------------------------------------------------------
# Trace tier
# ----------------------------------------------------------------------

#: Body long enough (40 ops) that the loop splits into two translation
#: blocks — the minimal shape that exercises cross-block traces.
MULTI_BLOCK_LOOP = """
_start:
    la s0, scratch
    li t0, 0
    li t1, {iters}
    li a0, 0
loop:
""" + "\n".join(
    f"    lw t2, {(k % 8) * 4}(s0)\n"
    "    add a0, a0, t2\n"
    "    xor t2, t2, t0\n"
    f"    sw t2, {(k % 8) * 4}(s0)"
    for k in range(10)) + """
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""

MULTI_BLOCK_TIMER = """
_start:
    la t0, handler
    csrw mtvec, t0
    li t0, 0x0200BFF8
    lw t1, 0(t0)
    li t2, {delta}
    add t1, t1, t2
    li t0, 0x02004000
    sw t1, 0(t0)
    sw zero, 4(t0)
    li t0, 0x80
    csrw mie, t0
    la s0, scratch
    li s2, 1
    csrsi mstatus, 8
spin:
""" + "\n".join(
    f"    lw s1, {(k % 4) * 4}(s0)\n"
    "    addi s1, s1, 1\n"
    f"    sw s1, {(k % 4) * 4}(s0)"
    for k in range(12)) + """
    blt zero, s2, spin
handler:
    csrr a0, mcause
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0
"""


def trace_machine(iters=400, **kwargs):
    kwargs.setdefault("jit_trace_threshold", 4)
    machine = compiled_machine(threshold=2, **kwargs)
    machine.load(assemble(MULTI_BLOCK_LOOP.format(iters=iters),
                          isa=RV32IMC_ZICSR))
    return machine


def test_trace_forms_over_hot_chain():
    machine = trace_machine()
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["traces_compiled"] == 1
    assert stats["trace_failures"] == 0
    # Once formed, the trace carries the loop: it retires more than the
    # per-block compiled tier and the interp warm-up combined.
    assert stats["trace_instructions"] > (stats["compiled_instructions"]
                                          + stats["interp_instructions"])
    heads = [block for block in machine.cpu._tb_cache.values()
             if block.trace is not None]
    assert len(heads) == 1
    backend = machine.cpu.backend
    assert heads[0].trace_token == backend._token
    members = [block for block in machine.cpu._tb_cache.values()
               if block.trace_member]
    assert len(members) >= 2


def test_trace_source_attached_for_introspection():
    machine = trace_machine()
    machine.run(max_instructions=1_000_000)
    head = next(block for block in machine.cpu._tb_cache.values()
                if block.trace is not None)
    source = head.trace.__jit_source__
    # The code object's filename carries the head address, so tracebacks
    # through trace code are attributable, like per-block functions.
    assert head.trace.__code__.co_filename == \
        f"<jit-trace:{head.start_pc:#x}>"
    # The loop-shaped trace re-enters its own head without leaving the
    # function, and its memory ops carry the inline fast-path guards.
    assert "while True:" in source
    assert "_ramok" in source and "_dirty.add" in source


def test_trace_threshold_gates_formation():
    machine = trace_machine(jit_trace_threshold=10**9)
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["traces_compiled"] == 0
    assert stats["trace_instructions"] == 0


def test_trace_threshold_validated():
    with pytest.raises(ValueError):
        CompiledBackend(Machine(MachineConfig(isa=RV32IMC_ZICSR)).cpu,
                        trace_threshold=0)


def test_self_loop_blocks_do_not_trace():
    """A single-block self-loop is already optimal as a batched fused
    loop — branch-terminated blocks have no static chain edge, so the
    trace walk never considers them and nothing is charged as a
    failure."""
    machine, result = run_asm(HOT_LOOP, backend="compiled",
                              jit_threshold=1, jit_trace_threshold=1)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["traces_compiled"] == 0
    assert stats["trace_failures"] == 0


#: The 32-op head chains into a block whose body holds an untemplated
#: CSR read: structurally untraceable, so the walk must blacklist the
#: head instead of re-walking the chain every execution.
UNTRACEABLE_CHAIN = """
_start:
    li t0, 0
    li t1, 200
    li a0, 0
loop:
""" + "\n".join("    add a0, a0, t0\n    xor a1, a1, a0"
                for _ in range(16)) + """
    csrr t3, mscratch
    add a0, a0, t3
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""


def test_untraceable_chain_blacklists_head():
    machine = compiled_machine(threshold=2, jit_trace_threshold=4)
    machine.load(assemble(UNTRACEABLE_CHAIN, isa=RV32IMC_ZICSR))
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    stats = machine.jit_stats()
    assert stats["traces_compiled"] == 0
    # Exactly one failed walk, then the head is blacklisted for good.
    assert stats["trace_failures"] == 1
    assert machine.cpu.backend._no_trace


def test_hook_attach_prevents_tracing():
    """Instruction hooks force the method shape; traces (whose interior
    exits cannot replay per-block hook ordering) must not form."""
    machine = trace_machine()

    from repro.vp import Plugin

    class P(Plugin):
        name = "insn-counter"

        def on_insn_exec(self, cpu, decoded, pc):
            pass

    machine.add_plugin(P())
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    assert machine.jit_stats()["traces_compiled"] == 0


def test_trace_budget_split_parity():
    """Budget exhaustion exits a trace at a member boundary — the same
    block-granular overshoot the interpreter's run loop has."""
    splits = (7, 93, 1000, 900, 17, 50_000)

    def run(backend):
        kwargs = {"backend": backend}
        if backend == "compiled":
            kwargs["jit_threshold"] = 2
            kwargs["jit_trace_threshold"] = 4
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, **kwargs))
        machine.load(assemble(MULTI_BLOCK_LOOP.format(iters=400),
                              isa=RV32IMC_ZICSR))
        outcomes = []
        for budget in splits:
            result = machine.run(max_instructions=budget)
            outcomes.append((result.stop_reason, result.instructions,
                             result.cycles, machine.cpu.pc))
        return outcomes, machine.jit_stats()

    compiled, stats = run("compiled")
    assert stats["traces_compiled"] >= 1
    assert compiled == run("interp")[0] == run("fastpath")[0]


@pytest.mark.parametrize("delta", [40, 173, 1009, 5003])
def test_timer_interrupt_lands_identically_in_trace(delta):
    """The trace polls interrupts at member boundaries, exactly where
    the interpreter's run loop polls between blocks."""
    def run(backend):
        kwargs = {"backend": backend, "max_instructions": 200_000}
        if backend == "compiled":
            kwargs["jit_threshold"] = 2
            kwargs["jit_trace_threshold"] = 4
        machine, result = run_asm(MULTI_BLOCK_TIMER.format(delta=delta),
                                  **kwargs)
        return (result.stop_reason, result.exit_code, result.instructions,
                result.cycles, machine.cpu.regs.snapshot(),
                machine.cpu.csrs.read(0x342),   # mcause
                machine.cpu.csrs.read(0x341))   # mepc

    compiled = run("compiled")
    assert compiled == run("interp")
    assert compiled[5] == 0x80000007  # machine timer interrupt


def test_flush_discards_trace_state():
    machine = trace_machine()
    first = machine.run(max_instructions=5_000)
    assert first.stop_reason == "max_insns"
    assert machine.jit_stats()["traces_compiled"] == 1
    machine.cpu.flush_translation_cache()
    assert not machine.cpu._tb_cache
    # The program re-translates, re-compiles, and re-traces.
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    assert machine.jit_stats()["traces_compiled"] == 2
