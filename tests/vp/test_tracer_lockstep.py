"""Tests for the execution tracer, register watch, and lockstep runner."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import (
    ExecutionTracer,
    LockstepDivergence,
    Machine,
    MachineConfig,
    RegisterWatch,
    run_lockstep,
)
from repro.testgen import TortureConfig, TortureGenerator

EXIT = "\n    li a7, 93\n    ecall\n"


def run_traced(source, limit=None):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(source, isa=RV32IMC_ZICSR))
    tracer = machine.add_plugin(ExecutionTracer(limit=limit))
    machine.run(max_instructions=100_000)
    return tracer


class TestExecutionTracer:
    def test_records_every_instruction(self):
        tracer = run_traced("_start: nop\nnop\nnop" + EXIT)
        assert tracer.count == 5  # 3 nops + li a7 + ecall
        assert tracer.tail(2)[0].text == "addi a7, zero, 93"
        assert tracer.tail(1)[0].text == "ecall"

    def test_entries_have_increasing_indices(self):
        tracer = run_traced("_start: nop\nnop" + EXIT)
        indices = [e.index for e in tracer.entries]
        assert indices == sorted(indices)
        assert indices[0] == 0

    def test_ring_buffer_limit(self):
        tracer = run_traced("_start:\n" + "nop\n" * 50 + EXIT, limit=10)
        assert len(tracer.entries) == 10
        assert tracer.count == 52  # 50 nops + li a7 + ecall
        # Only the most recent entries survive.
        assert tracer.entries[0].index == 42

    def test_render_contains_pc_and_disassembly(self):
        tracer = run_traced("_start: nop" + EXIT)
        text = tracer.render(5)
        assert "0x80000000" in text
        assert "addi zero, zero, 0" in text

    def test_clear(self):
        tracer = run_traced("_start: nop" + EXIT)
        tracer.clear()
        assert tracer.count == 0
        assert not tracer.entries


class TestRegisterWatch:
    def test_records_changes_only(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("""
        _start:
            li t0, 1
            nop
            nop
            li t0, 2
            nop
        """ + EXIT, isa=RV32IMC_ZICSR))
        watch = machine.add_plugin(RegisterWatch([5]))
        machine.run(max_instructions=100)
        values = [value for _i, value in watch.history[5]]
        assert values == [0, 1, 2]

    def test_render(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start: li t0, 7" + EXIT,
                              isa=RV32IMC_ZICSR))
        watch = machine.add_plugin(RegisterWatch([5]))
        machine.run(max_instructions=100)
        assert "t0:" in watch.render()


class TestLockstep:
    LOOP = """
    _start:
        li a0, 0
        li t0, 0
    loop:
        add a0, a0, t0
        addi t0, t0, 1
        li t1, 20
        blt t0, t1, loop
    """ + EXIT

    def test_cache_on_vs_off_equivalence(self):
        program = assemble(self.LOOP, isa=RV32IMC_ZICSR)
        primary = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                        block_cache_enabled=True))
        secondary = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                          block_cache_enabled=False))
        result = run_lockstep(primary, secondary, program)
        assert not result.diverged
        assert result.primary_exit == result.secondary_exit

    def test_torture_program_equivalence(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=200, seed=9))
        program = generator.generate()
        primary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        secondary = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                          block_cache_enabled=False))
        result = run_lockstep(primary, secondary, program,
                              max_instructions=100_000)
        assert not result.diverged

    def test_divergence_detected_with_injected_fault(self):
        from repro.faultsim import Fault, STUCK_AT_1, TARGET_GPR, inject

        program = assemble(self.LOOP, isa=RV32IMC_ZICSR)
        primary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        secondary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        # Divergence source: fault one machine's a0 read port up front.
        secondary.load(program)
        inject(secondary, Fault(TARGET_GPR, 10, 7, STUCK_AT_1))
        # run_lockstep reloads the program but keeps the faulty regfile.
        with pytest.raises(LockstepDivergence) as info:
            run_lockstep(primary, secondary, program)
        assert "registers differ" in str(info.value) or \
            "control flow" in str(info.value)

    def test_divergence_report_mode(self):
        from repro.faultsim import Fault, STUCK_AT_1, TARGET_GPR, inject

        program = assemble(self.LOOP, isa=RV32IMC_ZICSR)
        primary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        secondary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        secondary.load(program)
        inject(secondary, Fault(TARGET_GPR, 10, 7, STUCK_AT_1))
        result = run_lockstep(primary, secondary, program,
                              raise_on_divergence=False)
        assert result.diverged
        assert result.divergence is not None

    def test_isa_mismatch_rejected(self):
        from repro.isa import RV32IM

        program = assemble(self.LOOP, isa=RV32IMC_ZICSR)
        with pytest.raises(ValueError, match="share an ISA"):
            run_lockstep(
                Machine(MachineConfig(isa=RV32IMC_ZICSR)),
                Machine(MachineConfig(isa=RV32IM)),
                program,
            )
