"""CPU execution engine tests: translation blocks, traps, interrupts."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IM, RV32IMC_ZICSR
from repro.isa import csr as csrdef
from repro.vp import (
    Machine,
    MachineConfig,
    Plugin,
    RAM_BASE,
    STOP_MAX_INSNS,
    STOP_UNHANDLED_TRAP,
    STOP_WFI,
)

from ..conftest import run_asm


EXIT = """
    li a7, 93
    ecall
"""


class TestBasicExecution:
    def test_exit_code_from_a0(self):
        _machine, result = run_asm("_start: li a0, 7" + EXIT)
        assert result.stop_reason == "exit"
        assert result.exit_code == 7

    def test_loop_sum(self):
        machine, result = run_asm("""
        _start:
            li a0, 0
            li t0, 1
        loop:
            add a0, a0, t0
            addi t0, t0, 1
            li t1, 101
            blt t0, t1, loop
        """ + EXIT)
        assert result.exit_code == 5050

    def test_instruction_budget(self):
        _machine, result = run_asm("_start: j _start", max_instructions=100)
        assert result.stop_reason == STOP_MAX_INSNS
        assert result.instructions >= 100

    def test_instret_counts_instructions(self):
        machine, result = run_asm("_start: nop\nnop\nnop" + EXIT)
        # 3 nops + li + ecall (terminated inside ecall handler).
        assert machine.cpu.csrs.instret == result.instructions

    def test_cycles_exceed_instructions(self):
        _machine, result = run_asm("""
        _start:
            li a0, 100
            li a1, 7
            div a2, a0, a1
        """ + EXIT)
        assert result.cycles > result.instructions

    def test_uart_hello(self):
        machine, _result = run_asm("""
        _start:
            li t0, 0x10000000
            li t1, 'H'
            sb t1, 0(t0)
            li t1, 'i'
            sb t1, 0(t0)
        """ + EXIT)
        assert machine.uart.output == "Hi"

    def test_semihosting_write(self):
        machine, _result = run_asm("""
        _start:
            la a1, msg
            li a2, 5
            li a0, 1
            li a7, 64
            ecall
        """ + EXIT + """
        .data
        msg: .ascii "hello"
        """)
        assert machine.uart.output == "hello"

    def test_exit_device(self):
        _machine, result = run_asm("""
        _start:
            li t0, 0x00100000
            li t1, 85          # (42 << 1) | 1
            sw t1, 0(t0)
        """)
        assert result.exit_code == 42


class TestTranslationBlocks:
    def test_blocks_cached_on_loop(self):
        machine, _ = run_asm("""
        _start:
            li t0, 0
        loop:
            addi t0, t0, 1
            li t1, 50
            blt t0, t1, loop
        """ + EXIT)
        assert machine.cpu.tb_hits > 40
        assert machine.cpu.tb_misses <= 5

    def test_cache_disabled_never_hits(self):
        machine, _ = run_asm("""
        _start:
            li t0, 0
        loop:
            addi t0, t0, 1
            li t1, 10
            blt t0, t1, loop
        """ + EXIT, block_cache_enabled=False)
        assert machine.cpu.tb_hits == 0
        assert machine.cpu.tb_misses > 10

    def test_block_ends_at_branch(self):
        machine, _ = run_asm("_start: nop\nnop\nbeq zero, zero, done\n"
                             "nop\ndone:" + EXIT)
        blocks = {b.start_pc: b for b in machine.cpu._tb_cache.values()}
        first = blocks[RAM_BASE]
        assert [d.spec.name for d in first.insns] == ["addi", "addi", "beq"]

    def test_fence_i_flushes_cache(self):
        machine, _ = run_asm("_start: nop\nfence.i\nnop" + EXIT)
        # After fence.i the earlier block was flushed; at minimum the cache
        # holds only blocks translated afterwards.
        for block in machine.cpu._tb_cache.values():
            assert block.start_pc > RAM_BASE

    def test_max_block_length(self):
        source = "_start:\n" + "nop\n" * 100 + EXIT
        machine, _ = run_asm(source)
        for block in machine.cpu._tb_cache.values():
            assert len(block) <= 32

    def test_cache_cap_evicts_by_clearing(self):
        # 100 nops split into >3 blocks; a 2-block cap forces clear-on-full
        # eviction, so the cache never exceeds the cap but the program
        # still runs to completion.
        source = "_start:\n" + "nop\n" * 100 + EXIT
        machine, result = run_asm(source, tb_cache_max_blocks=2)
        assert result.stop_reason == "exit"
        assert len(machine.cpu._tb_cache) <= 2
        assert machine.cpu.tb_flushes >= 1

    def test_cache_cap_fires_flush_hooks(self):
        flushes = []

        class FlushSpy(Plugin):
            def on_tb_flush(self, cpu):
                flushes.append(len(cpu._tb_cache))

        source = "_start:\n" + "nop\n" * 100 + EXIT
        program = assemble(source, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                        tb_cache_max_blocks=1))
        machine.add_plugin(FlushSpy())
        machine.load(program)
        machine.run(max_instructions=1_000)
        assert flushes, "eviction must fire tb_flush hooks"

    def test_cache_cap_default_and_validation(self):
        assert MachineConfig().tb_cache_max_blocks == 4096
        with pytest.raises(ValueError, match="max_blocks"):
            run_asm("_start: nop" + EXIT, tb_cache_max_blocks=0)

    def test_uncapped_cache_unbounded(self):
        source = "_start:\n" + "nop\n" * 100 + EXIT
        machine, _ = run_asm(source, tb_cache_max_blocks=None)
        assert machine.cpu.max_blocks is None
        assert len(machine.cpu._tb_cache) >= 3

    def test_direct_jump_blocks_chain(self):
        # A loop whose body is split by an unconditional jump exercises
        # block chaining; results must match plain cached execution.
        source = """
        _start:
            li a0, 0
            li t0, 0
        loop:
            addi t0, t0, 1
            j body
        body:
            add a0, a0, t0
            li t1, 20
            blt t0, t1, loop
        """ + EXIT
        machine, result = run_asm(source)
        assert result.exit_code == sum(range(1, 21))
        assert machine.cpu.tb_hits > 20


class TestTraps:
    def test_unhandled_illegal_instruction_stops(self):
        _machine, result = run_asm("""
        _start:
            .word 0xFFFFFFFF
        """)
        assert result.stop_reason == STOP_UNHANDLED_TRAP
        assert result.trap_cause == csrdef.CAUSE_ILLEGAL_INSTRUCTION
        assert result.trap_pc == RAM_BASE

    def test_handled_illegal_instruction(self):
        _machine, result = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
            .word 0xFFFFFFFF
            li a0, 1        # skipped: handler exits
        """ + EXIT + """
        handler:
            li a0, 99
            li a7, 93
            ecall
        """)
        assert result.exit_code == 99

    def test_mepc_and_mcause_set(self):
        machine, _ = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
        bad:
            .word 0xFFFFFFFF
        handler:
            csrr a0, mepc
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == \
            machine.cpu.csrs.raw_read(csrdef.MEPC)
        assert machine.cpu.csrs.raw_read(csrdef.MCAUSE) == \
            csrdef.CAUSE_ILLEGAL_INSTRUCTION

    def test_mret_resumes_after_fixup(self):
        _machine, result = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
            li a0, 5
            ebreak
            addi a0, a0, 1
        """ + EXIT + """
        handler:
            csrr t1, mepc
            addi t1, t1, 4   # skip the 4-byte ebreak
            csrw mepc, t1
            mret
        """)
        assert result.exit_code == 6

    def test_load_access_fault(self):
        _machine, result = run_asm("""
        _start:
            li t0, 0x40000000   # unmapped
            lw t1, 0(t0)
        """)
        assert result.stop_reason == STOP_UNHANDLED_TRAP
        assert result.trap_cause == csrdef.CAUSE_LOAD_ACCESS

    def test_store_access_fault(self):
        _machine, result = run_asm("""
        _start:
            li t0, 0x40000000
            sw t0, 0(t0)
        """)
        assert result.trap_cause == csrdef.CAUSE_STORE_ACCESS

    def test_misaligned_load(self):
        _machine, result = run_asm("""
        _start:
            li t0, 0x80000001
            lw t1, 0(t0)
        """)
        assert result.trap_cause == csrdef.CAUSE_MISALIGNED_LOAD

    def test_misaligned_fetch_via_jalr(self):
        # jalr clears bit 0, so use an odd target via a branch to pc+2 with
        # no compressed support -> misaligned fetch on 2-byte boundary.
        _machine, result = run_asm("""
        _start:
            li t0, 0x80000102
            jr t0
        """, isa=RV32IM)
        assert result.trap_cause == csrdef.CAUSE_MISALIGNED_FETCH

    def test_ecall_without_semihosting_traps(self):
        _machine, result = run_asm("_start: ecall", semihosting=False)
        assert result.stop_reason == STOP_UNHANDLED_TRAP
        assert result.trap_cause == csrdef.CAUSE_ECALL_M

    def test_mtval_holds_bad_address(self):
        machine, _ = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
            li t1, 0x40000004
            lw t2, 0(t1)
        handler:
            csrr a0, mtval
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == 0x40000004


class TestInterrupts:
    TIMER_PROGRAM = """
    _start:
        la t0, handler
        csrw mtvec, t0
        # arm mtimecmp = mtime + 100
        li t0, 0x0200BFF8
        lw t1, 0(t0)
        addi t1, t1, 100
        li t0, 0x02004000
        sw t1, 0(t0)
        li t2, 0
        sw t2, 4(t0)
        # enable timer interrupt
        li t0, 0x80        # MTIE
        csrw mie, t0
        csrsi mstatus, 8   # MIE
    spin:
        j spin
    handler:
        csrr a0, mcause
        li a7, 93
        ecall
    """

    def test_timer_interrupt_taken(self):
        machine, result = run_asm(self.TIMER_PROGRAM, max_instructions=10_000)
        assert result.stop_reason == "exit"
        assert machine.cpu.regs.raw_read(10) == \
            csrdef.CAUSE_MACHINE_TIMER_INT & 0xFFFFFFFF

    def test_interrupt_not_taken_when_mie_clear(self):
        source = self.TIMER_PROGRAM.replace("csrsi mstatus, 8", "nop")
        _machine, result = run_asm(source, max_instructions=5_000)
        assert result.stop_reason == STOP_MAX_INSNS

    def test_wfi_waits_for_timer(self):
        _machine, result = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
            li t0, 0x02004000
            li t1, 5000
            sw t1, 0(t0)
            sw zero, 4(t0)
            li t0, 0x80
            csrw mie, t0
            csrsi mstatus, 8
            wfi
            j fail
        fail:
            li a0, 1
            li a7, 93
            ecall
        handler:
            li a0, 42
            li a7, 93
            ecall
        """, max_instructions=10_000)
        assert result.exit_code == 42
        assert result.cycles >= 5000  # time was fast-forwarded

    def test_wfi_without_event_halts(self):
        _machine, result = run_asm("_start: wfi", max_instructions=100)
        assert result.stop_reason == STOP_WFI

    def test_software_interrupt_via_msip(self):
        _machine, result = run_asm("""
        _start:
            la t0, handler
            csrw mtvec, t0
            li t0, 8           # MSIE
            csrw mie, t0
            csrsi mstatus, 8
            li t0, 0x02000000
            li t1, 1
            sw t1, 0(t0)
            j fail
        fail:
            li a0, 1
            li a7, 93
            ecall
        handler:
            li a0, 77
            li a7, 93
            ecall
        """, max_instructions=10_000)
        assert result.exit_code == 77


class TestPlugins:
    def test_insn_hook_sees_every_instruction(self):
        counted = []

        class Counter(Plugin):
            def on_insn_exec(self, cpu, decoded, pc):
                counted.append(decoded.spec.name)

        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        from repro.asm import assemble
        machine.load(assemble("_start: nop\nnop" + EXIT))
        machine.add_plugin(Counter())
        result = machine.run()
        assert len(counted) == result.instructions + 1  # ecall exits early
        assert counted[:2] == ["addi", "addi"]

    def test_block_hooks(self):
        translated, executed = [], []

        class Blocks(Plugin):
            def on_block_translate(self, cpu, block):
                translated.append(block.start_pc)

            def on_block_exec(self, cpu, block):
                executed.append(block.start_pc)

        machine = Machine()
        from repro.asm import assemble
        machine.load(assemble("""
        _start:
            li t0, 0
        loop:
            addi t0, t0, 1
            li t1, 5
            blt t0, t1, loop
        """ + EXIT))
        machine.add_plugin(Blocks())
        machine.run()
        # The first pass through the loop body belongs to the entry block;
        # each taken back-branch re-executes the loop block, which was
        # translated exactly once.
        loop_pc = executed[1]
        assert executed.count(loop_pc) == 4
        assert translated.count(loop_pc) == 1

    def test_mem_hook(self):
        accesses = []

        class Mem(Plugin):
            def on_mem_access(self, cpu, addr, width, value, is_store):
                accesses.append((addr, width, value, is_store))

        machine = Machine()
        from repro.asm import assemble
        machine.load(assemble("""
        _start:
            li t0, 0x80001000
            li t1, 42
            sw t1, 0(t0)
            lw t2, 0(t0)
        """ + EXIT))
        machine.add_plugin(Mem())
        machine.run()
        assert (0x80001000, 4, 42, True) in accesses
        assert (0x80001000, 4, 42, False) in accesses

    def test_trap_and_exit_hooks(self):
        events = []

        class Events(Plugin):
            def on_trap(self, cpu, cause, pc):
                events.append(("trap", cause))

            def on_exit(self, code):
                events.append(("exit", code))

        machine = Machine()
        from repro.asm import assemble
        machine.load(assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
            ebreak
        handler:
            li a0, 3
            li a7, 93
            ecall
        """))
        machine.add_plugin(Events())
        machine.run()
        assert ("trap", csrdef.CAUSE_BREAKPOINT) in events
        assert ("exit", 3) in events

    def test_remove_plugin(self):
        count = []

        class Counter(Plugin):
            def on_insn_exec(self, cpu, decoded, pc):
                count.append(pc)

        machine = Machine()
        plugin = machine.add_plugin(Counter())
        machine.remove_plugin(plugin)
        from repro.asm import assemble
        machine.load(assemble("_start: nop" + EXIT))
        machine.run()
        assert not count
