"""Tests for the GPIO device, UART interrupts, and machine checkpointing."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.isa import csr as csrdef
from repro.vp import BusError, Machine, MachineConfig
from repro.vp.devices.gpio import Gpio

EXIT = "\n    li a7, 93\n    ecall\n"


class TestGpioDevice:
    def test_out_readback(self):
        gpio = Gpio()
        gpio.store(0x00, 4, 0xA5)
        assert gpio.load(0x00, 4) == 0xA5

    def test_set_and_clear(self):
        gpio = Gpio()
        gpio.store(0x08, 4, 0b1010)   # SET
        gpio.store(0x08, 4, 0b0001)
        assert gpio.out == 0b1011
        gpio.store(0x0C, 4, 0b0010)   # CLEAR
        assert gpio.out == 0b1001

    def test_history_records_changes_only(self):
        gpio = Gpio()
        gpio.store(0x00, 4, 1)
        gpio.store(0x00, 4, 1)  # no change
        gpio.store(0x00, 4, 3)
        assert gpio.out_history == [1, 3]

    def test_inputs_from_host(self):
        gpio = Gpio()
        gpio.set_inputs(0x42)
        assert gpio.load(0x04, 4) == 0x42
        gpio.store(0x04, 4, 0xFF)  # target writes ignored
        assert gpio.inputs == 0x42

    def test_pin_helper(self):
        gpio = Gpio()
        gpio.store(0x00, 4, 0b100)
        assert gpio.pin(2) and not gpio.pin(0)

    def test_unknown_register(self):
        with pytest.raises(BusError):
            Gpio().load(0x40, 4)

    def test_mapped_on_machine(self):
        machine = Machine()
        program = assemble("""
        _start:
            li t0, 0x10001000
            li t1, 5
            sw t1, 0(t0)
        """ + EXIT, isa=RV32IMC_ZICSR)
        machine.load(program)
        machine.run(max_instructions=100)
        assert machine.gpio.out == 5


class TestUartInterrupt:
    PROGRAM = """
    _start:
        la t0, handler
        csrw mtvec, t0
        li t0, 0x10000000
        li t1, 1
        sw t1, 12(t0)      # UART IE: RX interrupt enable
        li t0, 0x800       # MEIE
        csrw mie, t0
        csrsi mstatus, 8
        wfi
        j fail
    fail:
        li a0, 1
        li a7, 93
        ecall
    .align 2
    handler:
        li t0, 0x10000000
        lw a0, 4(t0)       # read RXDATA (clears the pending condition)
        li a7, 93
        ecall
    """

    def test_rx_interrupt_wakes_wfi(self):
        machine = Machine()
        machine.load(assemble(self.PROGRAM, isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"K")
        result = machine.run(max_instructions=10_000)
        assert result.stop_reason == "exit"
        assert result.exit_code == ord("K")

    def test_no_interrupt_without_enable(self):
        source = self.PROGRAM.replace("sw t1, 12(t0)", "nop")
        machine = Machine()
        machine.load(assemble(source, isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"K")
        result = machine.run(max_instructions=10_000)
        # WFI sleeps forever: no enabled source can fire.
        assert result.stop_reason == "wfi"

    def test_interrupt_pending_logic(self):
        from repro.vp.devices.uart import Uart, IE

        uart = Uart()
        assert not uart.interrupt_pending()
        uart.store(IE, 4, 1)
        assert not uart.interrupt_pending()  # no data yet
        uart.push_rx(b"x")
        assert uart.interrupt_pending()
        uart.load(4, 4)  # drain RXDATA
        assert not uart.interrupt_pending()

    def test_external_interrupt_cause(self):
        machine = Machine()
        machine.load(assemble(self.PROGRAM.replace(
            "lw a0, 4(t0)       # read RXDATA (clears the pending condition)",
            "csrr a0, mcause\n        lw t1, 4(t0)"),
            isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"Z")
        result = machine.run(max_instructions=10_000)
        assert result.exit_code == csrdef.CAUSE_MACHINE_EXTERNAL_INT


class TestMachineSnapshot:
    PROGRAM = """
    _start:
        li t0, 0x10001000
        li t1, 7
        sw t1, 0(t0)       # GPIO out = 7
        la t2, counter
        lw t3, 0(t2)
        addi t3, t3, 1
        sw t3, 0(t2)
        mv a0, t3
    """ + EXIT + "\n.data\ncounter: .word 0"

    def test_restore_replays_identically(self):
        machine = Machine()
        machine.load(assemble(self.PROGRAM, isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        first = machine.run(max_instructions=1000)
        machine.restore(snap)
        second = machine.run(max_instructions=1000)
        # Without restore the counter in .data would increment to 2.
        assert first.exit_code == second.exit_code == 1

    def test_restore_resets_devices(self):
        machine = Machine()
        machine.load(assemble(self.PROGRAM, isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        machine.run(max_instructions=1000)
        assert machine.gpio.out == 7
        machine.restore(snap)
        assert machine.gpio.out == 0
        assert machine.uart.output == ""

    def test_restore_resets_counters(self):
        machine = Machine()
        machine.load(assemble(self.PROGRAM, isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        machine.run(max_instructions=1000)
        machine.restore(snap)
        assert machine.cpu.csrs.instret == 0
        assert machine.cpu.csrs.cycle == 0
        assert machine.cpu.pc == machine.entry

    def test_restore_undoes_code_patches(self):
        machine = Machine()
        machine.load(assemble("_start:\n    li a0, 1" + EXIT,
                              isa=RV32IMC_ZICSR))
        snap = machine.snapshot()
        original = machine.ram.load(0, 4)
        machine.ram.store(0, 4, original ^ 0x100)
        machine.cpu.flush_translation_cache()
        machine.restore(snap)
        assert machine.ram.load(0, 4) == original
        result = machine.run(max_instructions=100)
        assert result.exit_code == 1


class TestCampaignMachineReuse:
    def test_reused_and_fresh_campaigns_agree(self):
        from repro.faultsim import (FaultCampaign, MutantBudget,
                                    generate_mutants)
        from repro.testgen import StructuredGenerator

        program = StructuredGenerator(statements=5).generate(21).program
        budget = MutantBudget(code=20, gpr_transient=20, gpr_stuck=10,
                              memory_transient=10, memory_stuck=5)
        verdicts = {}
        for reuse in (True, False):
            campaign = FaultCampaign(program, isa=RV32IMC_ZICSR,
                                     reuse_machine=reuse)
            golden = campaign.golden()
            faults = generate_mutants(
                program, None, budget,
                golden_instructions=golden.instructions, seed=9)
            result = campaign.run(faults)
            verdicts[reuse] = [(r.fault, r.outcome, r.exit_code)
                               for r in result.results]
        assert verdicts[True] == verdicts[False]
