"""Backend parity: ``interp`` / ``fastpath`` / ``compiled`` must be
architecturally indistinguishable.

Every program from the three testgen suites plus a 200-program fuzz
corpus runs under all three execution backends — with and without
per-instruction hooks attached for the directed suites — and the suite
asserts byte-identical :class:`RunResult`, final register file, CSR
state, counters, and pc.

Digest note: MIP (0x344) is read *architecturally* (``csrs.read``), not
via ``raw_read``.  The compiled tier's batched fused loops skip the
per-iteration raw-MIP shadow refresh (it is rewritten at the next poll),
so the raw shadow may legitimately lag by one batch at a run boundary
while the architectural value — which re-polls the interrupt sources —
never does.  That is exactly the determinism contract documented in
``docs/performance.md``.
"""

import random

import pytest

from repro.fuzz.executor import ProgramBuilder
from repro.fuzz.mutators import IsaMutator
from repro.isa import RV32IMC_ZICSR
from repro.testgen import (ArchSuiteGenerator, TortureConfig,
                           TortureGenerator, UnitSuiteGenerator)
from repro.vp import (BACKEND_NAMES, Machine, MachineConfig, Plugin,
                      run_backend_lockstep)

#: Promote after two executions so even short directed programs exercise
#: the compiled tier.
JIT_THRESHOLD = 2

#: CSRs compared after every run: mstatus, mie, mtvec, mscratch, mepc,
#: mcause, mtval, mip (architectural — see module docstring).
DIGEST_CSRS = (0x300, 0x304, 0x305, 0x340, 0x341, 0x342, 0x343, 0x344)


class _CountingHooks(Plugin):
    """Per-instruction + per-block hooks; forces the JIT's method shape."""

    name = "parity-counter"

    def __init__(self) -> None:
        self.insns = 0
        self.blocks = 0

    def on_insn_exec(self, cpu, decoded, pc) -> None:
        self.insns += 1

    def on_block_exec(self, cpu, block) -> None:
        self.blocks += 1


def state_digest(machine):
    cpu = machine.cpu
    return (
        tuple(cpu.regs.snapshot()),
        cpu.pc,
        tuple(cpu.csrs.read(addr) for addr in DIGEST_CSRS),
        cpu.csrs.instret,
        cpu.csrs.cycle,
    )


def run_one(program, backend, hooks=False, budget=200_000):
    kwargs = {"backend": backend}
    if backend == "compiled":
        kwargs["jit_threshold"] = JIT_THRESHOLD
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, **kwargs))
    machine.load(program)
    plugin = machine.add_plugin(_CountingHooks()) if hooks else None
    result = machine.run(max_instructions=budget)
    hook_counts = (plugin.insns, plugin.blocks) if plugin else None
    return result, state_digest(machine), hook_counts, machine


def _suite_programs():
    programs = []
    programs += [(f"arch:{name}", prog) for name, prog
                 in ArchSuiteGenerator(RV32IMC_ZICSR).generate()]
    programs += [(f"unit:{name}", prog) for name, prog
                 in UnitSuiteGenerator(RV32IMC_ZICSR, seed=0).generate()]
    torture = TortureGenerator(RV32IMC_ZICSR,
                               TortureConfig(length=80, seed=7))
    programs += [(f"torture:{name}", prog) for name, prog
                 in torture.generate_suite(3, start_seed=7)]
    return programs


SUITE_PROGRAMS = _suite_programs()


@pytest.mark.parametrize("hooks", [False, True], ids=["nohooks", "hooks"])
@pytest.mark.parametrize("name,program", SUITE_PROGRAMS,
                         ids=[name for name, _ in SUITE_PROGRAMS])
def test_suite_program_parity(name, program, hooks):
    results = {}
    for backend in BACKEND_NAMES:
        result, digest, hook_counts, machine = run_one(
            program, backend, hooks=hooks)
        results[backend] = (result, digest, hook_counts)
        if backend == "compiled" and not hooks:
            stats = machine.jit_stats()
            assert stats is not None
    reference = results["interp"]
    for backend in ("fastpath", "compiled"):
        assert results[backend] == reference, (
            f"{name} diverged under {backend}:\n"
            f"  interp:   {reference}\n"
            f"  {backend}: {results[backend]}")


#: A memory-heavy loop long enough to split into multiple translation
#: blocks: the compiled tier must chain them into a cross-block trace,
#: and every backend routes the traffic through the RAM fast path.
TRACE_SOURCE = """
_start:
    la s0, scratch
    li t0, 0
    li t1, 300
    li a0, 0
loop:
""" + "\n".join(
    f"    lw t2, {(k % 8) * 4}(s0)\n"
    "    add a0, a0, t2\n"
    "    xor t2, t2, t0\n"
    f"    sw t2, {(k % 8) * 4}(s0)"
    for k in range(10)) + """
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""


@pytest.mark.parametrize("hooks", [False, True], ids=["nohooks", "hooks"])
def test_trace_and_fastpath_parity(hooks):
    """The trace tier and the RAM fast path are architecturally silent.

    Beyond the usual digest, the memory observables must match: the
    fast-path/bus access counters (the generated code increments them
    per access, exactly like :meth:`Cpu.load`/:meth:`Cpu.store`) and the
    dirty-page set (the fast path marks pages inline).
    """
    from repro.asm import assemble

    program = assemble(TRACE_SOURCE, isa=RV32IMC_ZICSR)
    results = {}
    observables = {}
    for backend in BACKEND_NAMES:
        result, digest, hook_counts, machine = run_one(
            program, backend, hooks=hooks)
        results[backend] = (result, digest, hook_counts)
        mem = machine.mem_stats()
        observables[backend] = (mem,
                                tuple(sorted(machine.ram.dirty_pages())))
        assert mem["fastpath_hit_rate"] > 0, (backend, mem)
        if backend == "compiled" and not hooks:
            stats = machine.jit_stats()
            assert stats["traces_compiled"] >= 1, stats
            assert stats["trace_instructions"] > \
                stats["compiled_instructions"], stats
    for backend in ("fastpath", "compiled"):
        assert results[backend] == results["interp"], backend
        assert observables[backend] == observables["interp"], backend


@pytest.mark.parametrize("pair", [("interp", "compiled"),
                                  ("fastpath", "compiled")],
                         ids=lambda p: "-vs-".join(p))
def test_lockstep_over_trace_program(pair):
    """Per-instruction lockstep across the multi-block memory loop."""
    from repro.asm import assemble

    program = assemble(TRACE_SOURCE, isa=RV32IMC_ZICSR)
    outcome = run_backend_lockstep(program, backends=pair,
                                   isa=RV32IMC_ZICSR,
                                   jit_threshold=JIT_THRESHOLD)
    assert not outcome.diverged
    assert outcome.instructions > 0


def test_compiled_tier_actually_engages():
    """The parity suite must not silently compare interpreter to itself."""
    # A hot loop long enough to clear the threshold many times over.
    source = """
    _start:
        li t0, 0
        li t1, 400
    loop:
        addi t0, t0, 1
        blt t0, t1, loop
        li a0, 0
        li a7, 93
        ecall
    """
    from repro.asm import assemble

    program = assemble(source, isa=RV32IMC_ZICSR)
    _result, _digest, _hooks, machine = run_one(program, "compiled")
    stats = machine.jit_stats()
    assert stats["blocks_compiled"] >= 1
    assert stats["compiled_instructions"] > stats["interp_instructions"]


def test_fuzz_corpus_parity():
    """200 seeded random programs, three backends, identical outcomes."""
    rng = random.Random(0xC0FFEE)
    mutator = IsaMutator(RV32IMC_ZICSR)
    builder = ProgramBuilder(RV32IMC_ZICSR)
    for index in range(200):
        words = []
        for _ in range(rng.randint(1, 24)):
            word = mutator.random_instruction(rng)
            if word is not None:
                words.append(word)
        program = builder.build(words)
        reference = run_one(program, "interp", budget=5_000)[:3]
        for backend in ("fastpath", "compiled"):
            got = run_one(program, backend, budget=5_000)[:3]
            assert got == reference, (
                f"fuzz program {index} diverged under {backend}: "
                f"words={[hex(w) for w in words]}")


@pytest.mark.parametrize("pair", [("interp", "fastpath"),
                                  ("interp", "compiled"),
                                  ("fastpath", "compiled")],
                         ids=lambda p: "-vs-".join(p))
def test_lockstep_per_instruction(pair):
    """Per-instruction lockstep over a branchy, memory-touching loop."""
    from repro.asm import assemble

    program = assemble("""
    _start:
        la s0, scratch
        li t0, 0
        li t1, 60
    loop:
        andi t2, t0, 3
        slli t3, t2, 2
        add t4, s0, t3
        sw t0, 0(t4)
        lw t5, 0(t4)
        add a0, a0, t5
        addi t0, t0, 1
        blt t0, t1, loop
        li a7, 93
        li a0, 0
        ecall
    .data
    scratch: .word 0, 0, 0, 0
    """, isa=RV32IMC_ZICSR)
    outcome = run_backend_lockstep(program, backends=pair,
                                   isa=RV32IMC_ZICSR,
                                   jit_threshold=JIT_THRESHOLD)
    assert not outcome.diverged
    assert outcome.instructions > 0
