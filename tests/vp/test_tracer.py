"""ExecutionTracer ring-buffer semantics and rendering."""

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import ExecutionTracer, Machine, MachineConfig, TraceEntry

# Retires well over 20 dynamic instructions (10 iterations x 4 + pro/epilog).
LOOP = """
_start:
    li a0, 0
    li t0, 1
loop:
    add a0, a0, t0
    addi t0, t0, 1
    li t1, 11
    blt t0, t1, loop
    li a7, 93
    ecall
"""


def run_traced(limit):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(LOOP, isa=RV32IMC_ZICSR))
    tracer = machine.add_plugin(ExecutionTracer(limit=limit))
    result = machine.run(max_instructions=10_000)
    return tracer, result


class TestRingBuffer:
    def test_limit_evicts_but_count_keeps_total(self):
        tracer, result = run_traced(limit=5)
        assert len(tracer.entries) == 5
        # on_insn_exec fires before execution, so the exiting ecall is
        # traced but never retired: total observed = retired + 1.
        assert tracer.count == result.instructions + 1
        assert tracer.count > 5
        # The retained entries are the most recent ones, in order.
        indices = [entry.index for entry in tracer.entries]
        assert indices == list(range(tracer.count - 5, tracer.count))

    def test_unlimited_keeps_full_trace(self):
        tracer, result = run_traced(limit=None)
        assert len(tracer.entries) == tracer.count == \
            result.instructions + 1
        assert [e.index for e in tracer.entries] == \
            list(range(tracer.count))

    def test_tail_returns_last_n(self):
        tracer, _ = run_traced(limit=None)
        tail = tracer.tail(3)
        assert len(tail) == 3
        assert tail[-1].text.startswith("ecall")
        assert [e.index for e in tail] == \
            [tracer.count - 3, tracer.count - 2, tracer.count - 1]

    def test_tail_larger_than_buffer(self):
        tracer, _ = run_traced(limit=4)
        assert len(tracer.tail(100)) == 4

    def test_clear_resets_entries_and_count(self):
        tracer, _ = run_traced(limit=5)
        tracer.clear()
        assert len(tracer.entries) == 0
        assert tracer.count == 0


class TestRendering:
    def test_entry_str_format(self):
        entry = TraceEntry(index=7, pc=0x80000004, word=0x00100093,
                           text="addi ra, zero, 1")
        text = str(entry)
        assert "7" in text
        assert "0x80000004" in text
        assert "00100093" in text
        assert text.endswith("addi ra, zero, 1")

    def test_render_joins_tail_lines(self):
        tracer, _ = run_traced(limit=None)
        rendered = tracer.render(2)
        lines = rendered.splitlines()
        assert len(lines) == 2
        assert "ecall" in lines[-1]
        # Every line carries a pc in hex.
        assert all("0x8000" in line for line in lines)
