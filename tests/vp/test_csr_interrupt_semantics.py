"""Privileged-architecture compliance corners: CSR access suppression and
interrupt priority."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.isa import csr as csrdef
from repro.vp import Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"


def run_traced(source, pre=None):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                    trace_registers=True))
    machine.load(assemble(source, isa=RV32IMC_ZICSR))
    machine.cpu.csrs.clear_trace()
    if pre:
        pre(machine)
    machine.run(max_instructions=1000)
    return machine


class TestCsrAccessSuppression:
    """The Zicsr spec: csrrw with rd=x0 performs no read; csrrs/csrrc with
    rs1=x0 perform no write."""

    def test_csrw_does_not_read(self):
        machine = run_traced("_start:\n    csrw mscratch, a0" + EXIT)
        assert csrdef.MSCRATCH in machine.cpu.csrs.writes
        assert csrdef.MSCRATCH not in machine.cpu.csrs.reads

    def test_csrr_does_not_write(self):
        machine = run_traced("_start:\n    csrr a0, mscratch" + EXIT)
        assert csrdef.MSCRATCH in machine.cpu.csrs.reads
        assert csrdef.MSCRATCH not in machine.cpu.csrs.writes

    def test_csrrs_with_nonzero_rs1_reads_and_writes(self):
        machine = run_traced("""
        _start:
            li a1, 4
            csrrs a0, mscratch, a1
        """ + EXIT)
        assert csrdef.MSCRATCH in machine.cpu.csrs.reads
        assert csrdef.MSCRATCH in machine.cpu.csrs.writes

    def test_csrrsi_zero_imm_does_not_write(self):
        machine = run_traced("_start:\n    csrrsi a0, mscratch, 0" + EXIT)
        assert csrdef.MSCRATCH not in machine.cpu.csrs.writes

    def test_csrrci_zero_imm_does_not_write(self):
        machine = run_traced("_start:\n    csrrci a0, mscratch, 0" + EXIT)
        assert csrdef.MSCRATCH not in machine.cpu.csrs.writes

    def test_csrrw_write_to_readonly_traps_even_with_rd_x0(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("_start:\n    csrw mhartid, a0" + EXIT,
                              isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=100)
        assert result.stop_reason == "unhandled_trap"
        assert result.trap_cause == csrdef.CAUSE_ILLEGAL_INSTRUCTION

    def test_csrrs_read_of_readonly_is_legal(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("""
        _start:
            csrr a0, mhartid
        """ + EXIT, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=100)
        assert result.stop_reason == "exit"
        assert result.exit_code == 0  # hart 0


class TestInterruptPriority:
    """MEI > MSI > MTI when several interrupts are pending at once."""

    PROGRAM = """
    _start:
        la t0, handler
        csrw mtvec, t0
        # Make software AND timer interrupts pending.
        li t0, 0x02000000
        li t1, 1
        sw t1, 0(t0)           # msip = 1
        li t0, 0x02004000
        sw zero, 0(t0)         # mtimecmp = 0 -> timer pending
        sw zero, 4(t0)
        li t0, 0x888           # MSIE | MTIE | MEIE
        csrw mie, t0
        csrsi mstatus, 8
        nop
        j fail
    fail:
        li a0, 1
        li a7, 93
        ecall
    .align 2
    handler:
        csrr a0, mcause
        li a7, 93
        ecall
    """

    def test_software_beats_timer(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(self.PROGRAM, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=10_000)
        assert result.exit_code == csrdef.CAUSE_MACHINE_SOFTWARE_INT

    def test_external_beats_software(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        source = self.PROGRAM.replace(
            "csrsi mstatus, 8",
            # Enable UART RX interrupt too, with data waiting.
            "li t0, 0x10000000\n        li t1, 1\n"
            "        sw t1, 12(t0)\n        csrsi mstatus, 8")
        machine.load(assemble(source, isa=RV32IMC_ZICSR))
        machine.uart.push_rx(b"x")
        result = machine.run(max_instructions=10_000)
        assert result.exit_code == csrdef.CAUSE_MACHINE_EXTERNAL_INT

    def test_mip_reflects_device_state(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("""
        _start:
            li t0, 0x02000000
            li t1, 1
            sw t1, 0(t0)       # msip = 1
            csrr a0, mip
        """ + EXIT, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=100)
        assert result.exit_code & csrdef.MIE_MSIE

    def test_trap_entry_saves_and_masks_mie(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
            csrsi mstatus, 8
            ebreak
        .align 2
        handler:
            csrr a0, mstatus
        """ + EXIT, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=100)
        status = result.exit_code
        assert not status & csrdef.MSTATUS_MIE   # masked in the handler
        assert status & csrdef.MSTATUS_MPIE      # previous MIE preserved
