"""RAM and system bus tests."""

import pytest

from repro.vp import BusError, Ram, SystemBus
from repro.vp.memory import Device


class TestRam:
    def test_little_endian_word(self):
        ram = Ram(64)
        ram.store(0, 4, 0x11223344)
        assert ram.load(0, 1) == 0x44
        assert ram.load(3, 1) == 0x11
        assert ram.load(0, 4) == 0x11223344

    def test_store_masks_value(self):
        ram = Ram(64)
        ram.store(0, 1, 0x1FF)
        assert ram.load(0, 1) == 0xFF

    def test_out_of_range_raises(self):
        ram = Ram(64)
        with pytest.raises(BusError):
            ram.load(64, 1)
        with pytest.raises(BusError):
            ram.store(62, 4, 0)
        with pytest.raises(BusError):
            ram.load(-1, 1)

    def test_bulk_write_read(self):
        ram = Ram(64)
        ram.write_bytes(8, b"hello")
        assert ram.read_bytes(8, 5) == b"hello"

    def test_bulk_out_of_range(self):
        ram = Ram(16)
        with pytest.raises(BusError):
            ram.write_bytes(14, b"abcd")

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Ram(0)
        with pytest.raises(ValueError):
            Ram(13)

    def test_fill(self):
        ram = Ram(8)
        ram.fill(0xAB)
        assert ram.load(5, 1) == 0xAB


class _Recorder(Device):
    def __init__(self):
        self.loads = []
        self.stores = []
        self.ticks = 0

    def load(self, offset, width):
        self.loads.append((offset, width))
        return 7

    def store(self, offset, width, value):
        self.stores.append((offset, width, value))

    def tick(self, cycles):
        self.ticks += cycles


class TestSystemBus:
    def test_dispatch_by_region(self):
        bus = SystemBus()
        dev = _Recorder()
        bus.attach(0x1000, 0x100, dev)
        assert bus.load(0x1004, 4) == 7
        assert dev.loads == [(4, 4)]
        bus.store(0x10FF, 1, 9)
        assert dev.stores == [(0xFF, 1, 9)]

    def test_unmapped_raises(self):
        bus = SystemBus()
        with pytest.raises(BusError):
            bus.load(0x2000, 4)

    def test_overlap_rejected(self):
        bus = SystemBus()
        bus.attach(0x1000, 0x100, _Recorder())
        with pytest.raises(ValueError, match="overlap"):
            bus.attach(0x10FF, 0x10, _Recorder())

    def test_adjacent_regions_allowed(self):
        bus = SystemBus()
        bus.attach(0x1000, 0x100, _Recorder())
        bus.attach(0x1100, 0x100, _Recorder())

    def test_tick_broadcast(self):
        bus = SystemBus()
        a, b = _Recorder(), _Recorder()
        bus.attach(0x0, 0x10, a)
        bus.attach(0x10, 0x10, b)
        bus.tick(5)
        assert a.ticks == b.ticks == 5

    def test_ram_helper_finds_ram(self):
        bus = SystemBus()
        bus.attach(0x0, 0x10, _Recorder())
        assert bus.ram() is None
        ram = Ram(64)
        bus.attach(0x100, 64, ram)
        assert bus.ram() is ram

    def test_regions_property_is_copy(self):
        bus = SystemBus()
        bus.attach(0x0, 0x10, _Recorder())
        bus.regions.clear()
        assert len(bus.regions) == 1


class TestDirtyPages:
    def test_fresh_ram_is_clean(self):
        assert Ram(4096).dirty_pages() == set()

    def test_store_marks_containing_page(self):
        ram = Ram(4096, page_size=256)
        ram.store(300, 4, 0xDEADBEEF)
        assert ram.dirty_pages() == {1}

    def test_straddling_store_marks_both_pages(self):
        ram = Ram(4096, page_size=256)
        ram.store(255, 2, 0xABCD)
        assert ram.dirty_pages() == {0, 1}

    def test_write_bytes_marks_range(self):
        ram = Ram(4096, page_size=256)
        ram.write_bytes(200, bytes(200))
        assert ram.dirty_pages() == {0, 1}

    def test_fill_marks_every_page(self):
        ram = Ram(1024, page_size=256)
        ram.fill(0xAA)
        assert ram.dirty_pages() == {0, 1, 2, 3}
        assert ram.load(512, 1) == 0xAA

    def test_clear_dirty(self):
        ram = Ram(4096, page_size=256)
        ram.store(0, 4, 1)
        ram.clear_dirty()
        assert ram.dirty_pages() == set()

    def test_dirty_pages_returns_copy(self):
        ram = Ram(4096, page_size=256)
        ram.store(0, 4, 1)
        ram.dirty_pages().clear()
        assert ram.dirty_pages() == {0}

    def test_page_size_shrinks_for_tiny_ram(self):
        # Ram(8) cannot hold a 256-byte page; the page size degrades to
        # keep size a whole number of pages.
        ram = Ram(8)
        assert ram.size % ram.page_size == 0
        assert ram.page_count * ram.page_size == ram.size
        ram.store(0, 4, 0x1234)
        assert 0 in ram.dirty_pages()

    def test_page_bytes_and_write_page(self):
        ram = Ram(1024, page_size=256)
        ram.store(256, 4, 0x11223344)
        blob = ram.page_bytes(1)
        assert len(blob) == 256
        assert blob[:4] == (0x11223344).to_bytes(4, "little")
        ram.clear_dirty()
        ram.write_page(1, bytes(256))
        assert ram.load(256, 4) == 0
        # write_page is a restore primitive: it must not mark dirty.
        assert ram.dirty_pages() == set()

    def test_load_does_not_mark_dirty(self):
        ram = Ram(4096, page_size=256)
        ram.load(100, 4)
        ram.read_bytes(0, 64)
        assert ram.dirty_pages() == set()


class TestBisectDispatch:
    def test_many_regions_dispatch_correctly(self):
        bus = SystemBus()
        devices = []
        for i in range(16):
            dev = _Recorder()
            devices.append(dev)
            bus.attach(0x1000 * (i + 1), 0x100, dev)
        for i in (0, 7, 15):
            bus.store(0x1000 * (i + 1) + 4, 1, i)
            assert devices[i].stores == [(4, 1, i)]
        with pytest.raises(BusError):
            bus.load(0x1000 * 17, 1)

    def test_replace_keeps_dispatch(self):
        bus = SystemBus()
        old, new = _Recorder(), _Recorder()
        bus.attach(0x1000, 0x100, old)
        bus.attach(0x2000, 0x100, _Recorder())
        bus.replace(0x1000, new)
        bus.store(0x1010, 1, 3)
        assert new.stores == [(0x10, 1, 3)]
        assert old.stores == []
