"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.isa import Decoder, IsaConfig, RV32IMC_ZICSR, encode
from repro.vp import Machine, MachineConfig, RAM_BASE


def run_asm(source: str, isa: IsaConfig = RV32IMC_ZICSR,
            max_instructions: int = 1_000_000, **machine_kwargs):
    """Assemble, load, and run a program; returns (machine, result)."""
    program = assemble(source, isa=isa)
    machine = Machine(MachineConfig(isa=isa, **machine_kwargs))
    machine.load(program)
    result = machine.run(max_instructions=max_instructions)
    return machine, result


def exec_insns(insn_words, isa: IsaConfig = RV32IMC_ZICSR, regs=None,
               max_instructions: int = 100):
    """Execute raw pre-encoded instructions starting at RAM base.

    ``regs`` pre-seeds the register file.  Returns the machine after the
    run (the program is terminated with an exit ecall appended by caller
    or simply hits the budget).
    """
    machine = Machine(MachineConfig(isa=isa))
    blob = b"".join(
        w.to_bytes(2 if (w & 3) != 3 else 4, "little") for w in insn_words
    )
    machine.load_blob(blob)
    for num, value in (regs or {}).items():
        machine.cpu.regs.raw_write(num, value)
    machine.run(max_instructions=max_instructions)
    return machine


def exec_one(name: str, *ops, isa: IsaConfig = RV32IMC_ZICSR, regs=None):
    """Encode and execute a single instruction; returns the machine."""
    decoder = Decoder(isa)
    word = encode(decoder, name, *ops)
    return exec_insns([word], isa=isa, regs=regs, max_instructions=1)


@pytest.fixture
def machine():
    return Machine()
