"""Unit and property tests for bit-field helpers and immediate codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import fields as f


class TestBits:
    def test_bits_extracts_inclusive_range(self):
        assert f.bits(0b1101100, 5, 2) == 0b1011

    def test_bits_full_word(self):
        assert f.bits(0xFFFFFFFF, 31, 0) == 0xFFFFFFFF

    def test_bits_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            f.bits(0, 3, 5)

    def test_bit_single(self):
        assert f.bit(0b100, 2) == 1
        assert f.bit(0b100, 1) == 0


class TestSignExtension:
    def test_positive_unchanged(self):
        assert f.sign_extend(0x7FF, 12) == 0x7FF

    def test_negative_extended(self):
        assert f.sign_extend(0x800, 12) == -2048
        assert f.sign_extend(0xFFF, 12) == -1

    def test_to_signed_roundtrip(self):
        assert f.to_signed(0xFFFFFFFF) == -1
        assert f.to_unsigned(-1) == 0xFFFFFFFF

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert f.to_signed(f.to_unsigned(value)) == value

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_unsigned_signed_roundtrip(self, value):
        assert f.to_unsigned(f.to_signed(value)) == value

    def test_fits_signed_bounds(self):
        assert f.fits_signed(2047, 12)
        assert f.fits_signed(-2048, 12)
        assert not f.fits_signed(2048, 12)
        assert not f.fits_signed(-2049, 12)

    def test_fits_unsigned_bounds(self):
        assert f.fits_unsigned(0, 5)
        assert f.fits_unsigned(31, 5)
        assert not f.fits_unsigned(32, 5)
        assert not f.fits_unsigned(-1, 5)


class TestImmediateCodecs:
    """Each encode_imm_X must be the exact inverse of imm_X."""

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_imm_i_roundtrip(self, imm):
        assert f.imm_i(f.encode_imm_i(imm)) == imm

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_imm_s_roundtrip(self, imm):
        assert f.imm_s(f.encode_imm_s(imm)) == imm

    @given(st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2))
    def test_imm_b_roundtrip(self, imm):
        assert f.imm_b(f.encode_imm_b(imm)) == imm

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_imm_u_roundtrip(self, imm):
        decoded = f.imm_u(f.encode_imm_u(imm))
        assert (decoded >> 12) & 0xFFFFF == imm

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)
           .map(lambda v: v * 2))
    def test_imm_j_roundtrip(self, imm):
        assert f.imm_j(f.encode_imm_j(imm)) == imm

    def test_imm_i_range_errors(self):
        with pytest.raises(ValueError):
            f.encode_imm_i(2048)
        with pytest.raises(ValueError):
            f.encode_imm_i(-2049)

    def test_branch_alignment_enforced(self):
        with pytest.raises(ValueError):
            f.encode_imm_b(3)

    def test_jump_alignment_enforced(self):
        with pytest.raises(ValueError):
            f.encode_imm_j(1)

    def test_branch_encoding_bit_positions(self):
        # offset -16: imm[12|10:5] -> bits 31|30:25, imm[4:1|11] -> 11:8|7
        word = f.encode_imm_b(-16)
        assert f.imm_b(word) == -16
        assert word & 0x80000000  # sign bit lands in bit 31

    def test_imm_fields_dont_touch_opcode_bits(self):
        for encoder, imm in [
            (f.encode_imm_i, -1), (f.encode_imm_s, -1),
            (f.encode_imm_b, -2), (f.encode_imm_u, 0xFFFFF),
            (f.encode_imm_j, -2),
        ]:
            assert encoder(imm) & 0x7F == 0
