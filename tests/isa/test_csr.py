"""Unit tests for the CSR file."""

import pytest

from repro.isa import csr as c


def make_csrs(**kwargs):
    return c.CsrFile(modules={"I", "M", "C"}, **kwargs)


class TestBasicAccess:
    def test_scratch_read_write(self):
        csrs = make_csrs()
        csrs.write(c.MSCRATCH, 0x1234)
        assert csrs.read(c.MSCRATCH) == 0x1234

    def test_values_masked_to_32_bits(self):
        csrs = make_csrs()
        csrs.write(c.MSCRATCH, 1 << 35 | 9)
        assert csrs.read(c.MSCRATCH) == 9

    def test_unimplemented_read_raises(self):
        with pytest.raises(c.IllegalCsrError):
            make_csrs().read(0x5C0)

    def test_unimplemented_write_raises(self):
        with pytest.raises(c.IllegalCsrError):
            make_csrs().write(0x5C0, 1)

    def test_read_only_write_raises(self):
        with pytest.raises(c.IllegalCsrError):
            make_csrs().write(c.MHARTID, 1)

    def test_read_only_detection_by_address_bits(self):
        assert c.CsrFile.is_read_only(0xF14)
        assert c.CsrFile.is_read_only(0xC00)
        assert not c.CsrFile.is_read_only(0x340)


class TestWarlBehaviour:
    def test_mstatus_only_writable_bits_stick(self):
        csrs = make_csrs()
        csrs.write(c.MSTATUS, 0xFFFFFFFF)
        assert csrs.read(c.MSTATUS) == c.MSTATUS_WRITABLE

    def test_misa_writes_ignored(self):
        csrs = make_csrs()
        before = csrs.read(c.MISA)
        csrs.write(c.MISA, 0)
        assert csrs.read(c.MISA) == before

    def test_mtvec_reserved_mode_clamped(self):
        csrs = make_csrs()
        csrs.write(c.MTVEC, 0x8000_0002)
        assert csrs.read(c.MTVEC) & 0x3 == 0

    def test_mtvec_vectored_mode_preserved(self):
        csrs = make_csrs()
        csrs.write(c.MTVEC, 0x8000_0001)
        assert csrs.read(c.MTVEC) & 0x3 == 1


class TestMisa:
    def test_misa_reflects_modules(self):
        csrs = make_csrs()
        misa = csrs.read(c.MISA)
        assert misa & (1 << 8)   # I
        assert misa & (1 << 12)  # M
        assert misa & (1 << 2)   # C
        assert not misa & (1 << 5)  # no F
        assert (misa >> 30) == 1  # MXL=32

    def test_misa_value_ignores_multichar_modules(self):
        assert c.misa_value({"I", "Zicsr"}) == (1 << 30) | (1 << 8)


class TestCounters:
    def test_cycle_counter_64bit_split(self):
        csrs = make_csrs()
        csrs.cycle = 0x1_2345_6789
        assert csrs.read(c.MCYCLE) == 0x2345_6789
        assert csrs.read(c.MCYCLEH) == 1
        assert csrs.read(c.CYCLE) == 0x2345_6789

    def test_instret_counter(self):
        csrs = make_csrs()
        csrs.instret = 42
        assert csrs.read(c.MINSTRET) == 42
        assert csrs.read(c.INSTRET) == 42

    def test_mcycle_write_low_preserves_high(self):
        csrs = make_csrs()
        csrs.cycle = 0x5_0000_0001
        csrs.write(c.MCYCLE, 7)
        assert csrs.cycle == 0x5_0000_0007

    def test_mcycleh_write(self):
        csrs = make_csrs()
        csrs.write(c.MCYCLEH, 2)
        assert csrs.cycle == 2 << 32

    def test_time_uses_time_source(self):
        csrs = c.CsrFile(modules={"I"}, time_source=lambda: 0xAB_0000_0001)
        assert csrs.read(c.TIME) == 1
        assert csrs.read(c.TIMEH) == 0xAB

    def test_time_defaults_to_cycle(self):
        csrs = make_csrs()
        csrs.cycle = 99
        assert csrs.read(c.TIME) == 99


class TestTraceAndSnapshot:
    def test_trace_records_accesses(self):
        csrs = c.CsrFile(modules={"I"}, trace=True)
        csrs.write(c.MSCRATCH, 1)
        csrs.read(c.MEPC)
        assert c.MSCRATCH in csrs.writes
        assert c.MEPC in csrs.reads

    def test_snapshot_restore(self):
        csrs = make_csrs()
        csrs.write(c.MSCRATCH, 5)
        csrs.cycle = 10
        snap = csrs.snapshot()
        csrs.write(c.MSCRATCH, 0)
        csrs.cycle = 0
        csrs.restore(snap)
        assert csrs.read(c.MSCRATCH) == 5
        assert csrs.cycle == 10

    def test_known_addresses_include_counters(self):
        known = make_csrs().known_addresses()
        assert c.CYCLE in known
        assert c.MSTATUS in known


class TestNames:
    def test_name_table_bijective(self):
        assert len(c.CSR_NAMES) == len(c.CSR_ADDRS)
        for addr, name in c.CSR_NAMES.items():
            assert c.CSR_ADDRS[name] == addr
