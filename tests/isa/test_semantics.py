"""Instruction-semantics unit tests, executed on the real VP.

Each test encodes a single instruction, seeds registers, runs one block,
and checks the architectural result — including the ISA's corner cases
(division by zero, signed overflow, shift masking, x0 discards).
"""

import pytest

from repro.vp import RAM_BASE

from ..conftest import exec_insns, exec_one

NEG1 = 0xFFFFFFFF
INT_MIN = 0x80000000


def check(name, ops, regs, reg, expected, **kw):
    machine = exec_one(name, *ops, regs=regs, **kw)
    assert machine.cpu.regs.raw_read(reg) == expected, (
        f"{name} {ops}: x{reg} = {machine.cpu.regs.raw_read(reg):#x}, "
        f"expected {expected:#x}"
    )


class TestArithmetic:
    def test_add(self):
        check("add", (3, 1, 2), {1: 5, 2: 7}, 3, 12)

    def test_add_wraps(self):
        check("add", (3, 1, 2), {1: NEG1, 2: 1}, 3, 0)

    def test_sub(self):
        check("sub", (3, 1, 2), {1: 5, 2: 7}, 3, NEG1 - 1)

    def test_addi_negative(self):
        check("addi", (3, 1, -5), {1: 3}, 3, NEG1 - 1)

    def test_writes_to_x0_discarded(self):
        check("add", (0, 1, 2), {1: 5, 2: 7}, 0, 0)

    def test_lui(self):
        check("lui", (5, 0xFFFFF), {}, 5, 0xFFFFF000)

    def test_auipc(self):
        machine = exec_one("auipc", 5, 1)
        assert machine.cpu.regs.raw_read(5) == RAM_BASE + 0x1000


class TestLogic:
    def test_and_or_xor(self):
        check("and", (3, 1, 2), {1: 0b1100, 2: 0b1010}, 3, 0b1000)
        check("or", (3, 1, 2), {1: 0b1100, 2: 0b1010}, 3, 0b1110)
        check("xor", (3, 1, 2), {1: 0b1100, 2: 0b1010}, 3, 0b0110)

    def test_andi_sign_extends_immediate(self):
        check("andi", (3, 1, -1), {1: 0xDEADBEEF}, 3, 0xDEADBEEF)

    def test_xori_not_idiom(self):
        check("xori", (3, 1, -1), {1: 0x0F0F0F0F}, 3, 0xF0F0F0F0)

    def test_ori(self):
        check("ori", (3, 1, 0xFF), {1: 0xF00}, 3, 0xFFF)


class TestShifts:
    def test_sll_masks_shift_amount(self):
        check("sll", (3, 1, 2), {1: 1, 2: 33}, 3, 2)

    def test_srl_logical(self):
        check("srl", (3, 1, 2), {1: INT_MIN, 2: 31}, 3, 1)

    def test_sra_arithmetic(self):
        check("sra", (3, 1, 2), {1: INT_MIN, 2: 31}, 3, NEG1)

    def test_slli(self):
        check("slli", (3, 1, 4), {1: 0x10}, 3, 0x100)

    def test_srli_vs_srai_on_negative(self):
        check("srli", (3, 1, 1), {1: 0x80000000}, 3, 0x40000000)
        check("srai", (3, 1, 1), {1: 0x80000000}, 3, 0xC0000000)


class TestComparisons:
    def test_slt_signed(self):
        check("slt", (3, 1, 2), {1: NEG1, 2: 1}, 3, 1)  # -1 < 1

    def test_sltu_unsigned(self):
        check("sltu", (3, 1, 2), {1: NEG1, 2: 1}, 3, 0)  # 0xFFFFFFFF > 1

    def test_slti(self):
        check("slti", (3, 1, 0), {1: NEG1}, 3, 1)

    def test_sltiu_sign_extended_then_unsigned(self):
        # imm -1 compares as 0xFFFFFFFF: only 0xFFFFFFFF is not below it.
        check("sltiu", (3, 1, -1), {1: 5}, 3, 1)
        check("sltiu", (3, 1, -1), {1: NEG1}, 3, 0)

    def test_sltu_zero_rs1_snez_idiom(self):
        check("sltu", (3, 0, 2), {2: 42}, 3, 1)
        check("sltu", (3, 0, 2), {2: 0}, 3, 0)


class TestMultiplyDivide:
    def test_mul_low(self):
        check("mul", (3, 1, 2), {1: 7, 2: 6}, 3, 42)

    def test_mul_wraps(self):
        check("mul", (3, 1, 2), {1: 0x10000, 2: 0x10000}, 3, 0)

    def test_mulh_signed_signed(self):
        check("mulh", (3, 1, 2), {1: NEG1, 2: NEG1}, 3, 0)  # 1 >> 32

    def test_mulh_large(self):
        check("mulh", (3, 1, 2), {1: INT_MIN, 2: INT_MIN}, 3, 0x40000000)

    def test_mulhu_unsigned(self):
        check("mulhu", (3, 1, 2), {1: NEG1, 2: NEG1}, 3, 0xFFFFFFFE)

    def test_mulhsu_mixed(self):
        check("mulhsu", (3, 1, 2), {1: NEG1, 2: NEG1}, 3, NEG1)

    def test_div_signed(self):
        check("div", (3, 1, 2), {1: (-7) & NEG1, 2: 2}, 3, (-3) & NEG1)

    def test_div_rounds_toward_zero(self):
        check("div", (3, 1, 2), {1: (-7) & NEG1, 2: 2}, 3, (-3) & NEG1)
        check("div", (3, 1, 2), {1: 7, 2: (-2) & NEG1}, 3, (-3) & NEG1)

    def test_div_by_zero_returns_minus_one(self):
        check("div", (3, 1, 2), {1: 42, 2: 0}, 3, NEG1)

    def test_div_overflow(self):
        check("div", (3, 1, 2), {1: INT_MIN, 2: NEG1}, 3, INT_MIN)

    def test_divu_by_zero_returns_all_ones(self):
        check("divu", (3, 1, 2), {1: 42, 2: 0}, 3, NEG1)

    def test_rem_sign_follows_dividend(self):
        check("rem", (3, 1, 2), {1: (-7) & NEG1, 2: 2}, 3, NEG1)  # -1
        check("rem", (3, 1, 2), {1: 7, 2: (-2) & NEG1}, 3, 1)

    def test_rem_by_zero_returns_dividend(self):
        check("rem", (3, 1, 2), {1: 42, 2: 0}, 3, 42)

    def test_rem_overflow_returns_zero(self):
        check("rem", (3, 1, 2), {1: INT_MIN, 2: NEG1}, 3, 0)

    def test_remu(self):
        check("remu", (3, 1, 2), {1: 7, 2: 4}, 3, 3)
        check("remu", (3, 1, 2), {1: 7, 2: 0}, 3, 7)


class TestLoadsStores:
    def test_store_load_word(self):
        machine = exec_insns([
            0x02A00093,              # addi ra, zero, 42
            0x00112223,              # sw ra, 4(sp)
            0x00412103,              # lw sp, 4(sp)
        ], regs={}, max_instructions=10)
        # sp was seeded by reset; after the round-trip sp holds 42.
        assert machine.cpu.regs.raw_read(2) == 42

    def test_lb_sign_extends(self):
        machine, = [exec_insns([
            0x08000093,              # addi ra, zero, 128
            0x001102A3,              # sb ra, 5(sp)
            0x00510183,              # lb gp, 5(sp)
        ], max_instructions=10)]
        assert machine.cpu.regs.raw_read(3) == 0xFFFFFF80

    def test_lbu_zero_extends(self):
        machine = exec_insns([
            0x08000093,              # addi ra, zero, 128
            0x001102A3,              # sb ra, 5(sp)
            0x00514183,              # lbu gp, 5(sp)
        ], max_instructions=10)
        assert machine.cpu.regs.raw_read(3) == 0x80

    def test_lh_sign_extends_lhu_does_not(self):
        from repro.isa import Decoder, RV32IMC_ZICSR, encode
        dec = Decoder(RV32IMC_ZICSR)
        machine = exec_insns(
            [encode(dec, "lh", 3, 0x100, 1),    # lh gp, 0x100(ra)
             encode(dec, "lhu", 4, 0x100, 1)],  # lhu tp, 0x100(ra)
            regs={1: RAM_BASE}, max_instructions=5)
        machine.ram.write_bytes(0x100, (0x8001).to_bytes(2, "little"))
        machine.cpu.reset(RAM_BASE)
        machine.cpu.regs.raw_write(1, RAM_BASE)
        machine.run(max_instructions=5)
        assert machine.cpu.regs.raw_read(3) == 0xFFFF8001
        assert machine.cpu.regs.raw_read(4) == 0x8001


class TestFloatSubset:
    def test_fmv_roundtrip(self):
        from repro.isa import RV32IMCF_ZICSR, Decoder, encode
        dec = Decoder(RV32IMCF_ZICSR)
        words = [
            encode(dec, "fmv.w.x", 3, 1),
            encode(dec, "fmv.x.w", 5, 3),
        ]
        machine = exec_insns(words, isa=RV32IMCF_ZICSR,
                             regs={1: 0x3F800000}, max_instructions=5)
        assert machine.cpu.fregs.read(3) == 0x3F800000
        assert machine.cpu.regs.raw_read(5) == 0x3F800000

    def test_fsgnj_as_fmv(self):
        from repro.isa import RV32IMCF_ZICSR, Decoder, encode
        dec = Decoder(RV32IMCF_ZICSR)
        words = [
            encode(dec, "fmv.w.x", 1, 1),
            encode(dec, "fsgnj.s", 2, 1, 1),
            encode(dec, "fmv.x.w", 5, 2),
        ]
        machine = exec_insns(words, isa=RV32IMCF_ZICSR,
                             regs={1: 0xC0490FDB}, max_instructions=5)
        assert machine.cpu.regs.raw_read(5) == 0xC0490FDB
