"""Encoder/disassembler tests, including a property-based round-trip over
every instruction of the full configuration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    Decoder,
    EncodingError,
    RV32IMCF_ZICSR,
    disassemble,
    encode,
)
from repro.isa.encoder import operand_roles

DEC = Decoder(RV32IMCF_ZICSR)

# Strategies producing encodable operand values per role and instruction.
_PRIME_REGS = st.integers(min_value=8, max_value=15)
_ANY_REG = st.integers(min_value=0, max_value=31)
_NONZERO_REG = st.integers(min_value=1, max_value=31)


def _imm_strategy(name):
    """A guaranteed-encodable immediate strategy for instruction ``name``."""
    if name in ("slli", "srli", "srai"):
        return st.integers(min_value=0, max_value=31)
    if name in ("c.slli", "c.srli", "c.srai"):
        return st.integers(min_value=1, max_value=31)
    if name in ("lui", "auipc"):
        return st.integers(min_value=0, max_value=(1 << 20) - 1)
    if name == "jal":
        return st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1) \
            .map(lambda v: v * 2)
    if name.startswith("b"):  # branches
        return st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1) \
            .map(lambda v: v * 2)
    if name in ("c.j", "c.jal"):
        return st.integers(min_value=-(1 << 10), max_value=(1 << 10) - 1) \
            .map(lambda v: v * 2)
    if name in ("c.beqz", "c.bnez"):
        return st.integers(min_value=-(1 << 7), max_value=(1 << 7) - 1) \
            .map(lambda v: v * 2)
    if name in ("c.addi", "c.li", "c.andi"):
        return st.integers(min_value=-32, max_value=31)
    if name == "c.lui":
        return st.sampled_from([1, 2, 31, 0xFFFFF, 0xFFFE1])
    if name == "c.addi16sp":
        return st.integers(min_value=-32, max_value=31) \
            .filter(lambda v: v).map(lambda v: v * 16)
    if name == "c.addi4spn":
        return st.integers(min_value=1, max_value=255).map(lambda v: v * 4)
    if name in ("c.lw", "c.sw", "c.flw", "c.fsw"):
        return st.integers(min_value=0, max_value=31).map(lambda v: v * 4)
    if name in ("c.lwsp", "c.swsp", "c.flwsp", "c.fswsp"):
        return st.integers(min_value=0, max_value=63).map(lambda v: v * 4)
    if name.startswith("csr") and name.endswith("i"):
        return st.integers(min_value=0, max_value=31)
    return st.integers(min_value=-2048, max_value=2047)  # generic 12-bit


def _reg_strategy(name, role):
    if name.startswith("c."):
        if name in ("c.mv", "c.add") and role in ("rd", "rs2"):
            return _NONZERO_REG
        if name in ("c.jr", "c.jalr") and role == "rs1":
            return _NONZERO_REG
        if name in ("c.li", "c.slli") and role == "rd":
            return _NONZERO_REG
        if name == "c.lui" and role == "rd":
            return _ANY_REG.filter(lambda r: r not in (0, 2))
        if name == "c.addi16sp":
            return st.just(2)
        if name in ("c.lwsp",) and role == "rd":
            return _NONZERO_REG
        if name in ("c.swsp", "c.flwsp", "c.fswsp") and role in ("rs2", "frs2",
                                                                 "frd"):
            return _ANY_REG
        if name == "c.addi" and role == "rd":
            return _ANY_REG
        return _PRIME_REGS
    return _ANY_REG


def operand_strategies(spec):
    strategies = []
    for role in operand_roles(spec):
        if role == "imm":
            strategies.append(_imm_strategy(spec.name))
        elif role == "csr":
            strategies.append(st.sampled_from([0x300, 0x305, 0x340, 0x341]))
        else:
            strategies.append(_reg_strategy(spec.name, role))
    return strategies


ROUNDTRIP_SPECS = [s for s in DEC.specs if s.encode is not None]


@pytest.mark.parametrize("spec", ROUNDTRIP_SPECS, ids=lambda s: s.name)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_encode_decode_roundtrip(spec, data):
    """decode(encode(ops)) must reproduce the mnemonic and operands."""
    values = [data.draw(strat) for strat in operand_strategies(spec)]
    word = encode(DEC, spec.name, *values)
    decoded = DEC.decode(word)
    assert decoded.spec.name == spec.name
    # Verify operand fields survive.
    roles = operand_roles(spec)
    for role, value in zip(roles, values):
        if role in ("rd", "frd"):
            assert decoded.rd == value
        elif role in ("rs1",):
            assert decoded.rs1 == value
        elif role in ("rs2", "frs2"):
            assert decoded.rs2 == value
        elif role == "csr":
            assert decoded.csr == value
        elif role == "imm":
            if spec.name in ("lui", "auipc"):
                assert (decoded.imm >> 12) & 0xFFFFF == value
            elif spec.name == "c.lui":
                assert (decoded.imm >> 12) & 0xFFFFF == value & 0xFFFFF
            else:
                assert decoded.imm == value, (spec.name, value, decoded.imm)


class TestEncodeErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(DEC, "frobnicate", 1, 2, 3)

    def test_wrong_operand_count(self):
        with pytest.raises(EncodingError):
            encode(DEC, "add", 1, 2)

    def test_out_of_range_immediate(self):
        with pytest.raises(EncodingError):
            encode(DEC, "addi", 1, 0, 5000)

    def test_out_of_range_register(self):
        with pytest.raises(EncodingError):
            encode(DEC, "add", 32, 0, 0)

    def test_compressed_register_class_enforced(self):
        with pytest.raises(EncodingError):
            encode(DEC, "c.lw", 3, 0, 8)  # rd=x3 not in x8..x15

    def test_misaligned_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(DEC, "beq", 1, 2, 3)

    def test_c_lui_zero_not_encodable(self):
        with pytest.raises(EncodingError):
            encode(DEC, "c.lui", 5, 0)


class TestDisassembler:
    def test_r_type(self):
        assert disassemble(DEC.decode(0x00208033)) == "add zero, ra, sp"

    def test_load_store_syntax(self):
        assert disassemble(DEC.decode(encode(DEC, "lw", 10, 8, 2))) == \
            "lw a0, 8(sp)"
        assert disassemble(DEC.decode(encode(DEC, "sw", 10, -4, 2))) == \
            "sw a0, -4(sp)"

    def test_upper_immediate_rendered_in_hex(self):
        assert disassemble(DEC.decode(0x123450B7)) == "lui ra, 0x12345"

    def test_csr_by_name(self):
        text = disassemble(DEC.decode(encode(DEC, "csrrw", 1, 0x340, 2)))
        assert text == "csrrw ra, mscratch, sp"

    def test_unknown_csr_in_hex(self):
        text = disassemble(DEC.decode(encode(DEC, "csrrw", 1, 0x7C0, 2)))
        assert "0x7c0" in text

    def test_no_operand_instruction(self):
        assert disassemble(DEC.decode(0x00000073)) == "ecall"

    def test_branch_with_pc_shows_target(self):
        word = encode(DEC, "beq", 1, 2, -16)
        text = disassemble(DEC.decode(word), pc=0x80000010)
        assert "0x80000000" in text

    def test_compressed_sp_loads(self):
        text = disassemble(DEC.decode(encode(DEC, "c.lwsp", 10, 16)))
        assert text == "c.lwsp a0, 16(sp)"

    def test_fp_registers_named(self):
        text = disassemble(DEC.decode(encode(DEC, "flw", 2, 4, 3)))
        assert text == "flw ft2, 4(gp)"
