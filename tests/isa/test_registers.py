"""Unit tests for the GPR and FPR register files."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import ABI_NAMES, FPRegisterFile, RegisterFile, gpr_name
from repro.isa.registers import parse_fpr, parse_gpr


class TestRegisterFile:
    def test_x0_reads_zero_after_write(self):
        regs = RegisterFile()
        regs.write(0, 0xDEADBEEF)
        assert regs.read(0) == 0

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(5, 1 << 40 | 7)
        assert regs.read(5) == 7

    def test_negative_write_wraps(self):
        regs = RegisterFile()
        regs.write(3, -1)
        assert regs.read(3) == 0xFFFFFFFF

    def test_indexing_operators(self):
        regs = RegisterFile()
        regs[4] = 99
        assert regs[4] == 99

    def test_trace_records_reads_and_writes(self):
        regs = RegisterFile(trace=True)
        regs.write(7, 1)
        regs.read(8)
        assert regs.writes == {7}
        assert regs.reads == {8}

    def test_trace_disabled_records_nothing(self):
        regs = RegisterFile(trace=False)
        regs.write(7, 1)
        regs.read(8)
        assert not regs.writes and not regs.reads

    def test_raw_write_bypasses_x0_hardwiring(self):
        regs = RegisterFile()
        regs.raw_write(0, 5)
        assert regs.raw_read(0) == 5
        # Architectural read still goes through the real storage here:
        # raw access models a fault on the physical register.
        assert regs.read(0) == 5

    def test_snapshot_restore_roundtrip(self):
        regs = RegisterFile()
        for i in range(32):
            regs.write(i, i * 3)
        snap = regs.snapshot()
        regs.write(5, 0)
        regs.restore(snap)
        assert regs.read(5) == 15

    def test_restore_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            RegisterFile().restore([0] * 31)

    def test_restore_re_zeroes_x0(self):
        regs = RegisterFile()
        regs.restore([7] * 32)
        assert regs.read(0) == 0

    def test_reset_clears_values_and_trace(self):
        regs = RegisterFile(trace=True)
        regs.write(9, 1)
        regs.reset()
        assert regs.read(9) == 0
        assert not regs.writes

    def test_dump_contains_abi_names(self):
        dump = RegisterFile().dump()
        for name in ("zero", "ra", "sp", "t6"):
            assert name in dump

    @given(st.integers(min_value=1, max_value=31),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_write_read_identity(self, num, value):
        regs = RegisterFile()
        regs.write(num, value)
        assert regs.read(num) == value


class TestNames:
    def test_abi_names_resolve(self):
        assert parse_gpr("sp") == 2
        assert parse_gpr("a0") == 10
        assert parse_gpr("t6") == 31

    def test_numeric_names_resolve(self):
        assert parse_gpr("x0") == 0
        assert parse_gpr("X15") == 15

    def test_fp_alias(self):
        assert parse_gpr("fp") == parse_gpr("s0") == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            parse_gpr("y3")

    def test_gpr_name_inverse(self):
        for i in range(32):
            assert parse_gpr(gpr_name(i)) == i

    def test_fpr_names(self):
        assert parse_fpr("fa0") == 10
        assert parse_fpr("f31") == 31
        with pytest.raises(KeyError):
            parse_fpr("a0")

    def test_abi_table_complete(self):
        assert len(ABI_NAMES) == 32
        assert len(set(ABI_NAMES)) == 32


class TestFPRegisterFile:
    def test_f0_is_writable(self):
        fregs = FPRegisterFile()
        fregs.write(0, 0x3F800000)
        assert fregs.read(0) == 0x3F800000

    def test_trace(self):
        fregs = FPRegisterFile(trace=True)
        fregs.write(1, 2)
        fregs.read(2)
        assert fregs.writes == {1}
        assert fregs.reads == {2}

    def test_snapshot_restore(self):
        fregs = FPRegisterFile()
        fregs.write(3, 42)
        snap = fregs.snapshot()
        fregs.write(3, 0)
        fregs.restore(snap)
        assert fregs.read(3) == 42
