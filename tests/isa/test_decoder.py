"""Decoder and IsaConfig tests, including golden encodings cross-checked
against binutils output."""

import pytest

from repro.isa import (
    Decoder,
    IllegalInstructionError,
    IsaConfig,
    RV32I,
    RV32IM,
    RV32IMC,
    RV32IMC_ZICSR,
    RV32IMCF_ZICSR,
)

# (word, expected mnemonic) pairs produced with GNU as / objdump.
GOLDEN = [
    (0x02A00093, "addi"),    # addi ra, zero, 42
    (0x00208033, "add"),     # add zero, ra, sp
    (0x40208033, "sub"),
    (0x0000A103, "lw"),      # lw sp, 0(ra)
    (0x00112023, "sw"),      # sw ra, 0(sp)
    (0x00000663, "beq"),
    (0x0000006F, "jal"),
    (0x00008067, "jalr"),    # ret
    (0x123450B7, "lui"),
    (0x12345097, "auipc"),
    (0x00000073, "ecall"),
    (0x00100073, "ebreak"),
    (0x30200073, "mret"),
    (0x10500073, "wfi"),
    (0x0000100F, "fence.i"),
    (0x0000000F, "fence"),
    (0x02208033, "mul"),
    (0x0220C033, "div"),
    (0x34011073, "csrrw"),   # csrw mscratch, sp
    (0x34002573, "csrrs"),   # csrr a0, mscratch
    (0x00101013, "slli"),
    (0x40105013, "srai"),
]

GOLDEN_COMPRESSED = [
    (0x1575, "c.addi"),      # c.addi a0, -3
    (0x4501, "c.li"),        # c.li a0, 0
    (0x8082, "c.jr"),        # ret
    (0x9002, "c.ebreak"),
    (0x852E, "c.mv"),        # c.mv a0, a1
    (0x952E, "c.add"),       # c.add a0, a1
    (0x4108, "c.lw"),        # c.lw a0, 0(a0)
    (0xC108, "c.sw"),
    (0xA001, "c.j"),         # c.j .
    (0x2001, "c.jal"),
    (0xC101, "c.beqz"),
    (0xE101, "c.bnez"),
    (0x0505, "c.addi"),      # c.addi a0, 1
    (0x050A, "c.slli"),      # c.slli a0, 2
    (0x8105, "c.srli"),      # c.srli s0, 1
    (0x8505, "c.srai"),
    (0x8905, "c.andi"),
    (0x8C09, "c.sub"),
    (0x8C29, "c.xor"),
    (0x8C49, "c.or"),
    (0x8C69, "c.and"),
    (0x4502, "c.lwsp"),      # c.lwsp a0, 0(sp)
    (0xC02A, "c.swsp"),      # c.swsp a0, 0(sp)
    (0x6505, "c.lui"),       # c.lui a0, 1
    (0x6141, "c.addi16sp"),  # c.addi16sp sp, 16
    (0x0528, "c.addi4spn"),  # c.addi4spn a0, sp, 136
]


class TestGoldenDecodes:
    @pytest.mark.parametrize("word,name", GOLDEN)
    def test_base_encodings(self, word, name):
        dec = Decoder(RV32IMC_ZICSR)
        assert dec.decode(word).spec.name == name

    @pytest.mark.parametrize("word,name", GOLDEN_COMPRESSED)
    def test_compressed_encodings(self, word, name):
        dec = Decoder(RV32IMC_ZICSR)
        assert dec.decode(word).spec.name == name


class TestModuleGating:
    def test_mul_illegal_without_m(self):
        dec = Decoder(RV32I)
        with pytest.raises(IllegalInstructionError):
            dec.decode(0x02208033)

    def test_mul_legal_with_m(self):
        assert Decoder(RV32IM).decode(0x02208033).spec.name == "mul"

    def test_compressed_illegal_without_c(self):
        dec = Decoder(RV32IM)
        with pytest.raises(IllegalInstructionError):
            dec.decode(0x1575)

    def test_csr_illegal_without_zicsr(self):
        dec = Decoder(RV32IMC)
        with pytest.raises(IllegalInstructionError):
            dec.decode(0x34011073)

    def test_flw_only_with_f(self):
        with pytest.raises(IllegalInstructionError):
            Decoder(RV32IMC_ZICSR).decode(0x0041A107)
        assert Decoder(RV32IMCF_ZICSR).decode(0x0041A107).spec.name == "flw"

    def test_compressed_fp_needs_both_c_and_f(self):
        # c.flw is only registered when C and F are both present.
        assert "c.flw" in Decoder(RV32IMCF_ZICSR).spec_by_name
        assert "c.flw" not in Decoder(RV32IMC_ZICSR).spec_by_name
        assert "c.flw" not in Decoder(IsaConfig({"I", "F"})).spec_by_name


class TestIllegalWords:
    def test_all_zero_word_is_illegal(self):
        with pytest.raises(IllegalInstructionError):
            Decoder(RV32IMC).decode(0x0000)

    def test_all_ones_is_illegal(self):
        with pytest.raises(IllegalInstructionError):
            Decoder(RV32IMC).decode(0xFFFFFFFF)

    def test_addi4spn_zero_imm_is_illegal(self):
        # funct3=000 op=00 with nzuimm == 0 but nonzero rd bits.
        with pytest.raises(IllegalInstructionError):
            Decoder(RV32IMC).decode(0x0004)

    def test_error_carries_word_and_pc(self):
        try:
            Decoder(RV32I).decode(0xFFFFFFFF, pc=0x100)
        except IllegalInstructionError as exc:
            assert exc.word == 0xFFFFFFFF
            assert exc.pc == 0x100
        else:
            pytest.fail("expected IllegalInstructionError")

    def test_try_decode_returns_none(self):
        assert Decoder(RV32I).try_decode(0xFFFFFFFF) is None


class TestOverlapResolution:
    """c.jr / c.mv / c.jalr / c.add / c.ebreak share match bits."""

    def test_cjr_beats_cmv_when_rs2_zero(self):
        assert Decoder(RV32IMC).decode(0x8082).spec.name == "c.jr"

    def test_cebreak_beats_cjalr_and_cadd(self):
        assert Decoder(RV32IMC).decode(0x9002).spec.name == "c.ebreak"

    def test_cjalr_beats_cadd_when_rs2_zero(self):
        assert Decoder(RV32IMC).decode(0x9082).spec.name == "c.jalr"

    def test_caddi16sp_beats_clui_for_rd_sp(self):
        assert Decoder(RV32IMC).decode(0x6141).spec.name == "c.addi16sp"


class TestDecodeCache:
    def test_cache_returns_same_object(self):
        dec = Decoder(RV32IMC)
        first = dec.decode(0x02A00093)
        assert dec.decode(0x02A00093) is first

    def test_clear_cache(self):
        dec = Decoder(RV32IMC)
        first = dec.decode(0x02A00093)
        dec.clear_cache()
        assert dec.decode(0x02A00093) is not first

    def test_compressed_cache_keyed_on_halfword(self):
        dec = Decoder(RV32IMC)
        # The upper 16 bits of a fetched word must not affect the result.
        assert dec.decode(0xFFFF1575).spec.name == "c.addi"
        assert dec.decode(0x00001575) is dec.decode(0xFFFF1575)


class TestIsaConfig:
    def test_requires_base_module(self):
        with pytest.raises(ValueError):
            IsaConfig({"M"})

    def test_rejects_unknown_module(self):
        with pytest.raises(ValueError):
            IsaConfig({"I", "X"})

    def test_from_string_basic(self):
        assert IsaConfig.from_string("rv32imc").modules == {"I", "M", "C"}

    def test_from_string_with_z_extensions(self):
        cfg = IsaConfig.from_string("RV32IMC_Zicsr")
        assert "Zicsr" in cfg.modules

    def test_from_string_g_expansion(self):
        cfg = IsaConfig.from_string("rv32g")
        assert {"I", "M", "Zicsr"} <= cfg.modules

    def test_name_is_canonical(self):
        assert IsaConfig({"I", "C", "M"}).name == "RV32IMC"
        assert "Zicsr" in RV32IMC_ZICSR.name

    def test_equality_and_hash(self):
        assert IsaConfig({"I", "M"}) == IsaConfig({"M", "I"})
        assert hash(IsaConfig({"I", "M"})) == hash(IsaConfig({"I", "M"}))

    def test_contains(self):
        assert "M" in RV32IM
        assert "C" not in RV32IM


class TestSpecTables:
    def test_no_duplicate_mnemonics(self):
        dec = Decoder(RV32IMCF_ZICSR)
        assert len(dec.spec_by_name) == len(dec.specs)

    def test_match_bits_within_mask(self):
        for spec in Decoder(RV32IMCF_ZICSR).specs:
            assert spec.match & ~spec.mask == 0, spec.name

    def test_32bit_specs_have_low_bits_11(self):
        for spec in Decoder(RV32IMCF_ZICSR).specs:
            if spec.length == 4:
                assert spec.match & 0x3 == 0x3, spec.name
            else:
                assert spec.match & 0x3 != 0x3, spec.name

    def test_every_spec_decodes_its_own_match(self):
        # Each spec's match word must decode to *some* spec (possibly a more
        # specific overlapping one), never raise.
        dec = Decoder(RV32IMCF_ZICSR)
        for spec in dec.specs:
            if spec.name == "c.addi4spn":
                continue  # bare match has nzuimm == 0 -> defined illegal
            decoded = dec.decode(spec.match)
            assert decoded.spec.mask >= spec.mask or decoded.spec is spec
