"""Extension-registry tests: the decodetree-style pluggability story."""

import pytest

from repro.isa import (
    Decoder,
    IsaConfig,
    available_modules,
    register_extension,
)
from repro.isa import formats as fmt
from repro.isa.rv32i import MASK_R
from repro.isa.spec import InstructionSpec


def _dummy_exec(cpu, d):
    cpu.regs.write(d.rd, 0x1234)


def make_spec(name="frob", match=0x0000400B, mask=MASK_R):
    # Major opcode 0x0B (custom-0): guaranteed free in the standard tables.
    return InstructionSpec(
        name=name, module="Xtest", match=match, mask=mask, length=4,
        decode=fmt.decode_r, execute=_dummy_exec, syntax="R",
        encode=fmt.encode_r,
    )


@pytest.fixture
def registered():
    register_extension("Xtest", [make_spec()])
    yield
    # Re-register an empty table so other tests see a clean module.
    register_extension("Xtest", [])


class TestRegistry:
    def test_registration_makes_module_available(self, registered):
        assert "Xtest" in available_modules()
        config = IsaConfig({"I", "Xtest"})
        decoder = Decoder(config)
        assert "frob" in decoder.spec_by_name

    def test_custom_instruction_decodes_and_executes(self, registered):
        from repro.asm import assemble
        from repro.vp import Machine, MachineConfig

        isa = IsaConfig({"I", "Xtest"})
        program = assemble("""
        _start:
            frob a0, zero, zero
            li a7, 93
            ecall
        """, isa=isa)
        machine = Machine(MachineConfig(isa=isa))
        machine.load(program)
        result = machine.run(max_instructions=10)
        assert result.exit_code == 0x1234

    def test_extension_invisible_without_module(self, registered):
        from repro.isa import IllegalInstructionError

        decoder = Decoder(IsaConfig({"I"}))
        with pytest.raises(IllegalInstructionError):
            decoder.decode(0x0000400B | (10 << 7))

    def test_reregistration_replaces_table(self, registered):
        register_extension("Xtest", [make_spec(name="frob2")])
        decoder = Decoder(IsaConfig({"I", "Xtest"}))
        assert "frob2" in decoder.spec_by_name
        assert "frob" not in decoder.spec_by_name

    def test_module_appears_in_config_name(self, registered):
        assert "Xtest" in IsaConfig({"I", "Xtest"}).name

    def test_from_string_finds_registered_module(self, registered):
        config = IsaConfig.from_string("rv32i_xtest")
        assert "Xtest" in config.modules

    def test_coverage_universe_includes_extension(self, registered):
        from repro.coverage import empty_report

        report = empty_report(IsaConfig({"I", "Xtest"}))
        assert "frob" in report.insn_universe
        assert report.insn_universe["frob"] == "Xtest"
