"""IPET bound and QTA co-simulation tests, including the soundness
invariant static bound >= QTA path time >= actual cycles."""

import pytest

from repro.wcet import (
    QtaError,
    QtaPlugin,
    WcetCfg,
    WcetError,
    WcetNode,
    analyze_program,
    compute_wcet_bound,
)

EXIT = """
    li a7, 93
    ecall
"""

LOOP = """
_start:
    li a0, 0
    li t0, 0
    li a1, 10
loop:                 # @loopbound 10
    add a0, a0, t0
    addi t0, t0, 1
    blt t0, a1, loop
""" + EXIT

NESTED = """
_start:
    li a0, 0
    li t0, 0
outer:                # @loopbound 5
    li t1, 0
inner:                # @loopbound 4
    addi a0, a0, 1
    addi t1, t1, 1
    li t2, 4
    blt t1, t2, inner
    addi t0, t0, 1
    li t2, 5
    blt t0, t2, outer
""" + EXIT

DIAMOND = """
_start:
    li a0, 1
    beqz a0, cheap
    li t0, 100
    li t1, 3
    div t2, t0, t1
    j join
cheap:
    nop
join:
""" + EXIT


def hand_cfg(node_costs, edges, entry=0, loop_bounds=None):
    cfg = WcetCfg(entry=entry)
    addr = 0x1000
    for node_id, cost in node_costs.items():
        cfg.nodes[node_id] = WcetNode(node_id, addr, addr + 4, cost)
        addr += 4
    cfg.edges = dict(edges)
    cfg.loop_bounds = dict(loop_bounds or {})
    return cfg


class TestIpetOnHandGraphs:
    def test_straight_line(self):
        cfg = hand_cfg({0: 5, 1: 7}, {(0, 1): 5})
        bound = compute_wcet_bound(cfg)
        assert bound.cycles == 12
        assert bound.method == "dag-longest-path"

    def test_diamond_takes_max_arm(self):
        cfg = hand_cfg(
            {0: 1, 1: 10, 2: 2, 3: 1},
            {(0, 1): 1, (0, 2): 1, (1, 3): 10, (2, 3): 2},
        )
        assert compute_wcet_bound(cfg).cycles == 1 + 10 + 1

    def test_self_loop_with_bound(self):
        cfg = hand_cfg(
            {0: 1, 1: 5, 2: 1},
            {(0, 1): 1, (1, 1): 5, (1, 2): 5},
            loop_bounds={1: 10},
        )
        bound = compute_wcet_bound(cfg)
        assert bound.cycles == 1 + 10 * 5 + 1
        assert bound.method == "ipet-lp"
        assert bound.block_counts[1] == pytest.approx(10.0)

    def test_unbounded_loop_rejected(self):
        cfg = hand_cfg(
            {0: 1, 1: 5, 2: 1},
            {(0, 1): 1, (1, 1): 5, (1, 2): 5},
        )
        with pytest.raises(WcetError, match="without bound"):
            compute_wcet_bound(cfg)

    def test_bound_of_one_means_single_iteration(self):
        cfg = hand_cfg(
            {0: 1, 1: 5, 2: 1},
            {(0, 1): 1, (1, 1): 5, (1, 2): 5},
            loop_bounds={1: 1},
        )
        assert compute_wcet_bound(cfg).cycles == 7

    def test_no_exit_node_rejected(self):
        cfg = hand_cfg({0: 1, 1: 1}, {(0, 1): 1, (1, 0): 1},
                       loop_bounds={0: 3})
        with pytest.raises(WcetError, match="no exit"):
            compute_wcet_bound(cfg)

    def test_invalid_bound_rejected(self):
        cfg = hand_cfg(
            {0: 1, 1: 5, 2: 1},
            {(0, 1): 1, (1, 1): 5, (1, 2): 5},
            loop_bounds={1: 0},
        )
        with pytest.raises(WcetError):
            compute_wcet_bound(cfg)


class TestEndToEnd:
    @pytest.mark.parametrize("source,name", [
        (LOOP, "loop"), (NESTED, "nested"), (DIAMOND, "diamond"),
    ])
    def test_soundness_invariant(self, source, name):
        analysis = analyze_program(source, name=name)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles

    def test_loop_static_bound_exact_for_straight_loop(self):
        analysis = analyze_program(LOOP)
        # Path: entry(3) + 10 * loop(5) + exit(2) = 55.
        assert analysis.static_bound.cycles == 55
        assert analysis.result.wcet_time == 55

    def test_nested_loop_counts(self):
        analysis = analyze_program(NESTED)
        # inner body runs 5*4 = 20 times.
        inner_node = analysis.wcet_cfg.node_by_start[
            analysis.program.symbols["inner"]]
        assert analysis.result.node_counts[inner_node] == 20

    def test_diamond_static_covers_expensive_arm(self):
        analysis = analyze_program(DIAMOND)
        # Execution takes the expensive arm; the bound must still dominate.
        assert analysis.static_bound.cycles >= analysis.result.actual_cycles
        assert analysis.result.pessimism >= 1.0

    def test_diamond_bound_dominates_untaken_path_too(self):
        taken = analyze_program(DIAMOND)
        not_taken = analyze_program(DIAMOND.replace("li a0, 1", "li a0, 0"))
        assert taken.static_bound.cycles == not_taken.static_bound.cycles
        assert not_taken.result.wcet_time <= taken.static_bound.cycles

    def test_call_and_return(self):
        analysis = analyze_program("""
        _start:
            li a0, 3
            call double
            call double
        """ + EXIT + """
        double:
            slli a0, a0, 1
            ret
        """)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles

    def test_pessimism_reported(self):
        analysis = analyze_program(LOOP)
        assert 1.0 <= analysis.result.pessimism < 2.0


class TestQtaPlugin:
    def test_strict_mode_rejects_off_cfg_transitions(self):
        cfg = hand_cfg({0: 1}, {})
        plugin = QtaPlugin(cfg, strict=True)
        plugin._starts = {0x1000: 0}

        class FakeCpu:
            pass

        plugin.on_insn_exec(FakeCpu(), None, 0x1000)
        with pytest.raises(QtaError):
            plugin.on_insn_exec(FakeCpu(), None, 0x1000)  # 0->0 not an edge

    def test_non_strict_mode_charges_source_wcet(self):
        cfg = hand_cfg({0: 7}, {})
        plugin = QtaPlugin(cfg, strict=False)
        plugin._starts = {0x1000: 0}
        plugin.on_insn_exec(None, None, 0x1000)
        plugin.on_insn_exec(None, None, 0x1000)
        assert plugin.wcet_time == 7

    def test_finalize_idempotent(self):
        cfg = hand_cfg({0: 7}, {})
        plugin = QtaPlugin(cfg)
        plugin._starts = {0x1000: 0}
        plugin.on_insn_exec(None, None, 0x1000)
        assert plugin.finalize() == 7
        assert plugin.finalize() == 7

    def test_reset(self):
        cfg = hand_cfg({0: 7}, {})
        plugin = QtaPlugin(cfg, record_path=True)
        plugin._starts = {0x1000: 0}
        plugin.on_insn_exec(None, None, 0x1000)
        plugin.reset()
        assert plugin.wcet_time == 0
        assert plugin.path == []
        assert plugin.current_node is None

    def test_path_recording(self):
        analysis_src = LOOP
        from repro.asm import assemble
        from repro.vp import Machine
        from repro.wcet import (loop_bounds_from_source, preprocess,
                                run_ait_analysis)
        program = assemble(analysis_src)
        report = run_ait_analysis(
            program, loop_bounds_from_source(analysis_src, program))
        cfg = preprocess(report)
        machine = Machine()
        machine.load(program)
        plugin = QtaPlugin(cfg, record_path=True)
        machine.add_plugin(plugin)
        machine.run(max_instructions=100_000)
        assert plugin.path[0] == cfg.entry
        assert len(plugin.path) == plugin.path_length
        assert plugin.path.count(cfg.node_by_start[
            program.symbols["loop"]]) == 10
