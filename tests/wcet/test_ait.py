"""Tests for the synthetic aiT analysis, report format, and ait2qta."""

import pytest

from repro.asm import assemble
from repro.vp.timing import TimingModel
from repro.wcet import (
    AitReport,
    WcetCfg,
    loop_bounds_from_source,
    preprocess,
    run_ait_analysis,
)
from repro.wcet.bounds import AnnotationError

LOOP_SOURCE = """
_start:
    li a0, 0
    li t0, 0
    li a1, 10
loop:                 # @loopbound 10
    add a0, a0, t0
    addi t0, t0, 1
    blt t0, a1, loop
    li a7, 93
    ecall
"""


def make_report(source=LOOP_SOURCE):
    program = assemble(source)
    bounds = loop_bounds_from_source(source, program)
    return run_ait_analysis(program, loop_bounds=bounds), program


class TestAnalysis:
    def test_blocks_cover_all_reachable_code(self):
        report, program = make_report()
        total_insns = sum(b.insn_count for b in report.blocks)
        assert total_insns == 8  # li,li,li | add,addi,blt | li,ecall

    def test_block_wcet_is_sum_of_worst_costs(self):
        report, _ = make_report("_start: li a0, 1\nli a7, 93\necall")
        (block,) = report.blocks
        # 2x alu (1) + ecall (system, 1) = 3 with the default model.
        assert block.wcet == 3

    def test_branch_block_includes_taken_penalty(self):
        report, program = make_report()
        loop_block = report.block_by_start(program.symbols["loop"])
        timing = TimingModel()
        # add + addi + blt(+penalty) = 1 + 1 + 1 + 2 = 5
        assert loop_block.wcet == 5

    def test_edges_carry_source_block_wcet(self):
        report, _ = make_report()
        by_id = {b.block_id: b for b in report.blocks}
        for edge in report.edges:
            assert edge.time == by_id[edge.src].wcet

    def test_loop_bounds_recorded_by_block_id(self):
        report, program = make_report()
        header = report.block_by_start(program.symbols["loop"])
        assert report.loop_bounds == {header.block_id: 10}

    def test_unknown_bound_address_rejected(self):
        program = assemble(LOOP_SOURCE)
        with pytest.raises(ValueError, match="not a block start"):
            run_ait_analysis(program, loop_bounds={0x1234: 5})

    def test_custom_timing_model_scales_wcet(self):
        program = assemble("_start: li a0, 1\nli a7, 93\necall")
        slow = TimingModel(class_costs={
            "alu": 10, "mul": 30, "div": 340, "load": 20, "store": 20,
            "branch": 10, "jump": 10, "csr": 10, "system": 10,
        }, taken_penalty=20)
        report = run_ait_analysis(program, timing=slow)
        assert report.blocks[0].wcet == 30


class TestXmlRoundtrip:
    def test_roundtrip_preserves_everything(self):
        report, _ = make_report()
        clone = AitReport.from_xml(report.to_xml())
        assert clone.program_name == report.program_name
        assert clone.entry_block == report.entry_block
        assert [(b.block_id, b.start, b.end, b.wcet, b.insn_count, b.kind)
                for b in clone.blocks] == \
               [(b.block_id, b.start, b.end, b.wcet, b.insn_count, b.kind)
                for b in report.blocks]
        assert [(e.src, e.dst, e.time) for e in clone.edges] == \
               [(e.src, e.dst, e.time) for e in report.edges]
        assert clone.loop_bounds == report.loop_bounds

    def test_from_xml_rejects_foreign_document(self):
        with pytest.raises(ValueError):
            AitReport.from_xml("<other/>")

    def test_block_lookup_helpers(self):
        report, program = make_report()
        block = report.block_by_start(program.symbols["loop"])
        assert report.block_by_id(block.block_id) is block
        with pytest.raises(KeyError):
            report.block_by_id(999)
        with pytest.raises(KeyError):
            report.block_by_start(0x1)


class TestAit2Qta:
    def test_preprocess_builds_matching_graph(self):
        report, _ = make_report()
        cfg = preprocess(report)
        assert len(cfg.nodes) == len(report.blocks)
        assert len(cfg.edges) == len(report.edges)
        assert cfg.loop_bounds == report.loop_bounds
        assert cfg.entry == report.entry_block

    def test_preprocess_rejects_dangling_edges(self):
        report, _ = make_report()
        report.edges[0].dst = 999
        with pytest.raises(ValueError, match="unknown blocks"):
            preprocess(report)

    def test_text_format_roundtrip(self):
        report, _ = make_report()
        cfg = preprocess(report)
        clone = WcetCfg.from_text(cfg.to_text())
        assert clone.entry == cfg.entry
        assert clone.edges == cfg.edges
        assert clone.loop_bounds == cfg.loop_bounds
        assert {n.node_id: (n.start, n.end, n.wcet)
                for n in clone.nodes.values()} == \
               {n.node_id: (n.start, n.end, n.wcet)
                for n in cfg.nodes.values()}

    def test_text_format_rejects_garbage(self):
        with pytest.raises(ValueError):
            WcetCfg.from_text("hello world")

    def test_text_format_requires_entry_node(self):
        with pytest.raises(ValueError, match="entry"):
            WcetCfg.from_text("qta-cfg v1 x\nentry 5\nnode 0 0x0 0x4 1 exit")

    def test_node_at(self):
        report, program = make_report()
        cfg = preprocess(report)
        node = cfg.node_at(program.symbols["loop"])
        assert node is not None and node.start == program.symbols["loop"]
        assert cfg.node_at(0x0) is None

    def test_path_time_accumulation(self):
        report, _ = make_report()
        cfg = preprocess(report)
        entry = cfg.entry
        succ = cfg.successors(entry)[0]
        time = cfg.total_wcet_of_path([entry, succ])
        assert time == cfg.edges[(entry, succ)] + cfg.nodes[succ].wcet

    def test_path_time_rejects_unknown_edge(self):
        report, _ = make_report()
        cfg = preprocess(report)
        with pytest.raises(KeyError, match="absent"):
            cfg.total_wcet_of_path([cfg.entry, cfg.entry])


class TestAnnotations:
    def test_attached_form(self):
        program = assemble(LOOP_SOURCE)
        bounds = loop_bounds_from_source(LOOP_SOURCE, program)
        assert bounds == {program.symbols["loop"]: 10}

    def test_standalone_form(self):
        source = "# @loopbound loop 7\n" + LOOP_SOURCE.replace(
            "# @loopbound 10", "")
        program = assemble(source)
        bounds = loop_bounds_from_source(source, program)
        assert bounds == {program.symbols["loop"]: 7}

    def test_unknown_label_rejected(self):
        source = "# @loopbound nowhere 5\n_start: ecall"
        program = assemble(source)
        with pytest.raises(AnnotationError, match="unknown label"):
            loop_bounds_from_source(source, program)

    def test_zero_bound_rejected(self):
        source = "loop: ecall  # @loopbound 0"
        program = assemble(source)
        with pytest.raises(AnnotationError, match=">= 1"):
            loop_bounds_from_source(source, program)

    def test_no_annotations_empty(self):
        source = "_start: ecall"
        assert loop_bounds_from_source(source, assemble(source)) == {}
