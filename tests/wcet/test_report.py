"""WCET report rendering tests."""

import pytest

from repro.wcet import analyze_program, render_block_table, render_full, \
    render_summary

SOURCE = """
_start:
    li t0, 0
    li t1, 6
loop:              # @loopbound 6
    addi t0, t0, 1
    blt t0, t1, loop
    li a7, 93
    ecall
"""


@pytest.fixture(scope="module")
def analysis():
    return analyze_program(SOURCE, name="report-test")


class TestSummary:
    def test_summary_contains_all_figures(self, analysis):
        text = render_summary(analysis, name="demo")
        assert "demo" in text
        assert str(analysis.static_bound.cycles) in text
        assert str(analysis.result.wcet_time) in text
        assert str(analysis.result.actual_cycles) in text
        assert "pessimism" in text

    def test_summary_names_the_method(self, analysis):
        assert analysis.static_bound.method in render_summary(analysis)


class TestBlockTable:
    def test_every_node_has_a_row(self, analysis):
        table = render_block_table(analysis)
        for node_id in analysis.wcet_cfg.nodes:
            assert f"\n{node_id:>5} " in "\n" + table

    def test_loop_headers_marked(self, analysis):
        table = render_block_table(analysis)
        assert "*" in table
        assert "annotated loop header" in table

    def test_contributions_sum_to_bound(self, analysis):
        # The witness counts weighted by node wcet equal the LP objective.
        cfg = analysis.wcet_cfg
        counts = analysis.static_bound.block_counts
        total = sum(cfg.nodes[n].wcet * counts.get(n, 0.0)
                    for n in cfg.nodes)
        assert round(total) == analysis.static_bound.cycles

    def test_observed_counts_reported(self, analysis):
        table = render_block_table(analysis)
        # The loop body executed 6 times.
        assert " 6 " in table or "        6" in table


class TestFullReport:
    def test_full_combines_both(self, analysis):
        text = render_full(analysis, name="full")
        assert "WCET analysis: full" in text
        assert "address range" in text
