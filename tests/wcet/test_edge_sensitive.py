"""Edge-sensitive WCET annotation tests (the tightening extension)."""

import pytest

from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

BRANCHY = """
_start:
    li a0, 0
    li t0, 0
    li t1, 32
head:                  # @loopbound 32
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 3
    j tail
even:
    addi a0, a0, 1
tail:
    addi t0, t0, 1
    blt t0, t1, head
""" + EXIT

STRAIGHT = "_start:\n    li a0, 5\n    add a0, a0, a0" + EXIT


def both_modes(source):
    node = analyze_program(source, name="node")
    edge = analyze_program(source, name="edge", edge_sensitive=True)
    return node, edge


class TestSoundness:
    @pytest.mark.parametrize("source", [BRANCHY, STRAIGHT])
    def test_invariant_holds_in_both_modes(self, source):
        for analysis in both_modes(source):
            assert analysis.static_bound.cycles >= analysis.result.wcet_time
            assert analysis.result.wcet_time >= analysis.result.actual_cycles


class TestTightening:
    def test_edge_sensitive_bound_never_looser(self):
        node, edge = both_modes(BRANCHY)
        assert edge.static_bound.cycles <= node.static_bound.cycles

    def test_edge_sensitive_tightens_branchy_code(self):
        node, edge = both_modes(BRANCHY)
        # Fall-through edges stop paying the redirect penalty.
        assert edge.static_bound.cycles < node.static_bound.cycles

    def test_edge_sensitive_qta_path_tighter(self):
        node, edge = both_modes(BRANCHY)
        assert edge.result.wcet_time < node.result.wcet_time

    def test_straight_line_unchanged(self):
        node, edge = both_modes(STRAIGHT)
        assert edge.static_bound.cycles == node.static_bound.cycles

    def test_fallthrough_edges_cheaper_than_taken(self):
        edge = analyze_program(BRANCHY, edge_sensitive=True)
        cfg = edge.wcet_cfg
        # Find a branch node with two distinct successors and compare.
        found = False
        for (src, dst), time in cfg.edges.items():
            others = [t for (s, d), t in cfg.edges.items()
                      if s == src and d != dst]
            if others and any(t != time for t in others):
                found = True
        assert found, "expected at least one outcome-differentiated edge"


class TestBranchToNextCorner:
    def test_branch_targeting_fallthrough_stays_sound(self):
        # beq to the literally next instruction: taken and fall-through
        # lead to the same successor; the edge must keep the penalty.
        source = """
        _start:
            li t0, 0
            beq t0, t0, next
        next:
            li a0, 0
        """ + EXIT
        analysis = analyze_program(source, edge_sensitive=True)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles
