"""Persistence-based static cache analysis tests."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import ICacheConfig
from repro.wcet import analyze_program, build_cfg, classify

EXIT = "\n    li a7, 93\n    ecall\n"

HOT_LOOP = """
_start:
    li t0, 0
    li t1, 100
    li a0, 0
hot:                   # @loopbound 100
    add a0, a0, t0
    addi t0, t0, 1
    blt t0, t1, hot
""" + EXIT

LOOP_WITH_CALL = """
_start:
    li t0, 0
    li t1, 10
cl:                    # @loopbound 10
    call helper
    addi t0, t0, 1
    blt t0, t1, cl
""" + EXIT + """
helper:
    addi a0, a0, 1
    ret
"""

NESTED = """
_start:
    li s0, 0
    li s1, 4
no:                    # @loopbound 4
    li t0, 0
    li t1, 8
ni:                    # @loopbound 8
    addi t0, t0, 1
    blt t0, t1, ni
    addi s0, s0, 1
    blt s0, s1, no
""" + EXIT


def classify_source(source, icache=None):
    program = assemble(source, isa=RV32IMC_ZICSR)
    cfg = build_cfg(program)
    return classify(cfg, icache or ICacheConfig()), program, cfg


class TestClassification:
    def test_hot_loop_is_persistent(self):
        classification, program, _ = classify_source(HOT_LOOP)
        assert len(classification.loops) == 1
        loop = classification.loops[0]
        assert loop.header == program.symbols["hot"]
        assert loop.fill_cost > 0
        assert program.symbols["hot"] in classification.block_loop

    def test_straight_line_has_no_loops(self):
        classification, _, _ = classify_source("_start: nop\nnop" + EXIT)
        assert classification.loops == []
        assert classification.block_loop == {}

    def test_loop_with_call_disqualified(self):
        classification, _, _ = classify_source(LOOP_WITH_CALL)
        assert classification.loops == []

    def test_nested_loops_both_detected(self):
        classification, program, _ = classify_source(NESTED)
        headers = {loop.header for loop in classification.loops}
        assert program.symbols["no"] in headers
        assert program.symbols["ni"] in headers

    def test_inner_blocks_assigned_to_inner_loop(self):
        classification, program, _ = classify_source(NESTED)
        by_header = {loop.header: i
                     for i, loop in enumerate(classification.loops)}
        inner = program.symbols["ni"]
        assert classification.block_loop[inner] == by_header[inner]

    def test_too_small_cache_disqualifies(self):
        # A cache with a single 16-byte line cannot hold the loop.
        tiny = ICacheConfig(size=16, line_size=16, ways=1, miss_penalty=10)
        classification, _, _ = classify_source(HOT_LOOP, tiny)
        assert classification.loops == []

    def test_entry_edges_originate_outside_body(self):
        classification, _, _ = classify_source(HOT_LOOP)
        loop = classification.loops[0]
        for src, dst in loop.entry_edges:
            assert dst == loop.header
            assert src not in loop.body


class TestCostModel:
    def test_persistent_block_costs_nothing_per_execution(self):
        classification, program, cfg = classify_source(HOT_LOOP)
        header = program.symbols["hot"]
        block = cfg.blocks[header]
        assert classification.block_fetch_cost(
            header, block.start, block.end) == 0

    def test_non_loop_block_keeps_miss_always(self):
        classification, _, cfg = classify_source(HOT_LOOP)
        entry_block = cfg.blocks[cfg.entry]
        cost = classification.block_fetch_cost(
            cfg.entry, entry_block.start, entry_block.end)
        assert cost == classification.icache.lines_spanned(
            entry_block.start, entry_block.end) \
            * classification.icache.miss_penalty

    def test_edge_cost_only_on_entry_edges(self):
        classification, program, cfg = classify_source(HOT_LOOP)
        loop = classification.loops[0]
        src, dst = loop.entry_edges[0]
        assert classification.edge_fetch_cost(src, dst) == loop.fill_cost
        # The back edge is free.
        header = program.symbols["hot"]
        assert classification.edge_fetch_cost(header, header) == 0


class TestEndToEndTightening:
    ICACHE = ICacheConfig(miss_penalty=10)

    def analyze(self, source, **kw):
        return analyze_program(source, icache=self.ICACHE, **kw)

    @pytest.mark.parametrize("source", [HOT_LOOP, NESTED])
    def test_soundness_with_persistence(self, source):
        analysis = self.analyze(source, cache_analysis=True)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles

    def test_persistence_tightens_hot_loop(self):
        miss_always = self.analyze(HOT_LOOP)
        persistent = self.analyze(HOT_LOOP, cache_analysis=True)
        assert persistent.static_bound.cycles < \
            miss_always.static_bound.cycles
        # The tightened bound approaches the simulated cost.
        pessimism = persistent.static_bound.cycles / \
            persistent.result.actual_cycles
        assert pessimism < 1.15

    def test_call_loop_falls_back_to_miss_always(self):
        miss_always = self.analyze(LOOP_WITH_CALL)
        analyzed = self.analyze(LOOP_WITH_CALL, cache_analysis=True)
        assert analyzed.static_bound.cycles == miss_always.static_bound.cycles

    def test_persistence_composes_with_edge_sensitivity(self):
        both = self.analyze(HOT_LOOP, cache_analysis=True,
                            edge_sensitive=True)
        persistent = self.analyze(HOT_LOOP, cache_analysis=True)
        assert both.static_bound.cycles <= persistent.static_bound.cycles
        assert both.static_bound.cycles >= both.result.wcet_time \
            >= both.result.actual_cycles
