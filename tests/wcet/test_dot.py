"""DOT export tests."""

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.wcet import (
    analyze_program,
    build_cfg,
    cfg_to_dot,
    wcet_cfg_to_dot,
)

SOURCE = """
_start:
    li a0, 0
    call helper
    beqz a0, done
loop:              # @loopbound 5
    addi a0, a0, -1
    bnez a0, loop
done:
    li a7, 93
    ecall
helper:
    li a0, 5
    ret
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE, isa=RV32IMC_ZICSR)


class TestCfgDot:
    def test_valid_digraph_structure(self, program):
        dot = cfg_to_dot(build_cfg(program), name="demo")
        assert dot.startswith('digraph "demo" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_every_block_and_edge_present(self, program):
        cfg = build_cfg(program)
        dot = cfg_to_dot(cfg)
        for start in cfg.blocks:
            assert f"n{start:x} [" in dot
        for src, dst in cfg.edges:
            assert f"n{src:x} -> n{dst:x}" in dot

    def test_symbols_in_labels(self, program):
        dot = cfg_to_dot(build_cfg(program))
        assert "<_start>" in dot
        assert "<helper>" in dot

    def test_disassembly_in_node_bodies(self, program):
        dot = cfg_to_dot(build_cfg(program))
        assert "addi" in dot

    def test_call_edges_styled(self, program):
        dot = cfg_to_dot(build_cfg(program))
        assert "darkgreen" in dot  # call edge
        assert "purple" in dot     # return edge

    def test_node_truncation(self, program):
        dot = cfg_to_dot(build_cfg(program), max_insns_per_node=1)
        assert "(+", dot

    def test_quotes_escaped(self, program):
        dot = cfg_to_dot(build_cfg(program), name='we "quote" things')
        assert 'digraph "we \\"quote\\" things"' in dot


class TestWcetDot:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyze_program(SOURCE, name="dot-test")

    def test_nodes_show_wcet(self, analysis):
        dot = wcet_cfg_to_dot(analysis.wcet_cfg)
        assert "wcet =" in dot

    def test_edges_labeled_with_times(self, analysis):
        dot = wcet_cfg_to_dot(analysis.wcet_cfg)
        for (src, dst), time in analysis.wcet_cfg.edges.items():
            assert f'n{src} -> n{dst} [label="{time}"' in dot

    def test_loop_bound_annotated(self, analysis):
        dot = wcet_cfg_to_dot(analysis.wcet_cfg)
        assert "loop bound = 5" in dot

    def test_entry_double_bordered(self, analysis):
        dot = wcet_cfg_to_dot(analysis.wcet_cfg)
        assert "peripheries=2" in dot

    def test_cli_emit_dot(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.s"
        path.write_text(SOURCE)
        assert main(["wcet", str(path), "--emit-dot"]) == 0
        out = capsys.readouterr().out
        assert "Graphviz DOT" in out
        assert "digraph" in out
