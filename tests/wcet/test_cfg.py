"""CFG reconstruction tests."""

import pytest

from repro.asm import assemble
from repro.wcet import (
    CfgError,
    KIND_BRANCH,
    KIND_CALL,
    KIND_EXIT,
    KIND_JUMP,
    KIND_RET,
    build_cfg,
)

BASE = 0x8000_0000


def cfg_of(source, **kw):
    program = assemble(source, **kw)
    return build_cfg(program), program


class TestStraightLine:
    def test_single_block(self):
        cfg, _ = cfg_of("""
        _start:
            li a0, 1
            li a7, 93
            ecall
        """)
        assert len(cfg.blocks) == 1
        block = cfg.blocks[BASE]
        assert block.kind == KIND_EXIT
        assert block.successors == []

    def test_block_instruction_listing(self):
        cfg, _ = cfg_of("_start: nop\nnop\necall")
        block = cfg.blocks[BASE]
        assert [d.spec.name for d in block.insns] == ["addi", "addi", "ecall"]
        assert block.pcs == [BASE, BASE + 4, BASE + 8]
        assert block.end == BASE + 12


class TestBranches:
    SOURCE = """
    _start:
        li a0, 0
        beqz a0, then
        li a1, 1
        j join
    then:
        li a1, 2
    join:
        li a7, 93
        ecall
    """

    def test_diamond_shape(self):
        cfg, prog = cfg_of(self.SOURCE)
        entry = cfg.blocks[cfg.entry]
        assert entry.kind == KIND_BRANCH
        assert len(entry.successors) == 2
        then_addr = prog.symbols["then"]
        join_addr = prog.symbols["join"]
        assert set(entry.successors) == {then_addr, prog.symbols["then"] - 8}
        assert cfg.blocks[then_addr].successors == [join_addr]

    def test_branch_successor_order_taken_first(self):
        cfg, prog = cfg_of(self.SOURCE)
        assert cfg.blocks[cfg.entry].successors[0] == prog.symbols["then"]

    def test_loop_back_edge(self):
        cfg, prog = cfg_of("""
        _start:
            li t0, 0
        loop:
            addi t0, t0, 1
            blt t0, a0, loop
            ecall
        """)
        loop_addr = prog.symbols["loop"]
        assert (loop_addr, loop_addr) in cfg.back_edges()

    def test_predecessors(self):
        cfg, prog = cfg_of(self.SOURCE)
        join = prog.symbols["join"]
        preds = cfg.predecessors_of(join)
        assert len(preds) == 2


class TestJumpsAndLabels:
    def test_jump_target_becomes_leader(self):
        cfg, prog = cfg_of("""
        _start:
            j skip
            nop
        skip:
            ecall
        """)
        assert prog.symbols["skip"] in cfg.blocks
        entry = cfg.blocks[cfg.entry]
        assert entry.kind == KIND_JUMP
        assert entry.successors == [prog.symbols["skip"]]

    def test_unreachable_code_excluded(self):
        cfg, prog = cfg_of("""
        _start:
            j skip
        dead:
            li a0, 1
            nop
        skip:
            ecall
        """)
        assert prog.symbols["dead"] not in cfg.blocks

    def test_fallthrough_block_split_at_target(self):
        cfg, prog = cfg_of("""
        _start:
            nop
        target:
            nop
            beqz a0, target
            ecall
        """)
        # `target` is a branch destination mid straight-line code: the code
        # must be split there.
        assert prog.symbols["target"] in cfg.blocks
        assert cfg.blocks[cfg.entry].end == prog.symbols["target"]


class TestCalls:
    SOURCE = """
    _start:
        call func
        call func
        li a7, 93
        ecall
    func:
        addi a0, a0, 1
        ret
    """

    def test_call_block_kind_and_target(self):
        cfg, prog = cfg_of(self.SOURCE)
        entry = cfg.blocks[cfg.entry]
        assert entry.kind == KIND_CALL
        assert entry.call_target == prog.symbols["func"]

    def test_call_edge_goes_to_callee_return_site_recorded(self):
        cfg, prog = cfg_of(self.SOURCE)
        entry = cfg.blocks[cfg.entry]
        assert entry.successors == [prog.symbols["func"]]
        assert entry.return_site == cfg.entry + 4

    def test_ret_successors_are_all_return_sites(self):
        cfg, prog = cfg_of(self.SOURCE)
        func = cfg.blocks[prog.symbols["func"]]
        assert func.kind == KIND_RET
        assert set(func.successors) == {cfg.entry + 4, cfg.entry + 8}

    def test_function_partitioning(self):
        cfg, prog = cfg_of(self.SOURCE)
        assert set(cfg.functions) == {cfg.entry, prog.symbols["func"]}
        assert prog.symbols["func"] in cfg.functions[prog.symbols["func"]]
        assert prog.symbols["func"] not in cfg.functions[cfg.entry]

    def test_function_of(self):
        cfg, prog = cfg_of(self.SOURCE)
        assert cfg.function_of(prog.symbols["func"]) == prog.symbols["func"]


class TestErrors:
    def test_indirect_jump_marked(self):
        cfg, _ = cfg_of("""
        _start:
            la t0, _start
            jr t0
        """)
        blocks = list(cfg.blocks.values())
        assert any(b.kind == "indirect" for b in blocks)

    def test_running_into_illegal_word_fails(self):
        with pytest.raises(CfgError):
            cfg_of("_start: nop\n.word 0xFFFFFFFF")

    def test_block_at_unknown_address(self):
        cfg, _ = cfg_of("_start: ecall")
        with pytest.raises(CfgError):
            cfg.block_at(0x1234)

    def test_block_containing(self):
        cfg, _ = cfg_of("_start: nop\nnop\necall")
        assert cfg.block_containing(BASE + 4).start == BASE
        with pytest.raises(CfgError):
            cfg.block_containing(0x0)


class TestCompressed:
    def test_compressed_instruction_boundaries(self):
        cfg, prog = cfg_of("""
        _start:
            c.li a0, 1
            c.addi a0, 2
            li a7, 93
            ecall
        """)
        block = cfg.blocks[cfg.entry]
        assert block.pcs[1] - block.pcs[0] == 2

    def test_compressed_branch(self):
        cfg, prog = cfg_of("""
        _start:
            c.li a0, 0
        loop:
            c.addi a0, 1
            c.bnez a0, loop
            ecall
        """)
        loop = prog.symbols["loop"]
        assert loop in cfg.blocks[loop].successors
