"""BMI extension tests: encodings, semantics, kernels, evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.bmi import (
    BMI_SPECS,
    KERNELS,
    RV32IM_ZBB,
    RV32IMC_ZICSR_ZBB,
    compare_kernel,
    evaluate_all,
    table,
)
from repro.isa import (
    Decoder,
    IllegalInstructionError,
    IsaConfig,
    RV32IM,
    encode,
)

from ..conftest import exec_one

NEG1 = 0xFFFFFFFF
DEC = Decoder(RV32IM_ZBB)


def bmi(name, ops, regs):
    machine = exec_one(name, *ops, isa=RV32IM_ZBB, regs=regs)
    return machine.cpu.regs.raw_read(ops[0])


class TestRegistration:
    def test_module_registered(self):
        from repro.isa import available_modules
        assert "Zbb" in available_modules()

    def test_exactly_ten_instructions(self):
        assert len(BMI_SPECS) == 10

    def test_gated_behind_module(self):
        word = encode(DEC, "cpop", 3, 1)
        with pytest.raises(IllegalInstructionError):
            Decoder(RV32IM).decode(word)
        assert Decoder(RV32IM_ZBB).decode(word).spec.name == "cpop"

    def test_zbb_encodings_match_ratified_spec(self):
        # Golden words from binutils with -march=rv32im_zbb.
        golden = {
            "andn": 0x40B57533,   # andn a0, a0, a1
            "orn": 0x40B56533,    # orn a0, a0, a1
            "xnor": 0x40B54533,   # xnor a0, a0, a1
            "clz": 0x60051513,    # clz a0, a0
            "ctz": 0x60151513,    # ctz a0, a0
            "cpop": 0x60251513,   # cpop a0, a0
            "min": 0x0AB54533,    # min a0, a0, a1
            "max": 0x0AB56533,    # max a0, a0, a1
            "rol": 0x60B51533,    # rol a0, a0, a1
            "ror": 0x60B55533,    # ror a0, a0, a1
        }
        for name, word in golden.items():
            decoded = DEC.decode(word)
            assert decoded.spec.name == name, (name, hex(word))


class TestSemantics:
    def test_andn(self):
        assert bmi("andn", (3, 1, 2), {1: 0xFF, 2: 0x0F}) == 0xF0

    def test_orn(self):
        assert bmi("orn", (3, 1, 2), {1: 0, 2: NEG1}) == 0

    def test_orn_all(self):
        assert bmi("orn", (3, 1, 2), {1: 0, 2: 0}) == NEG1

    def test_xnor(self):
        assert bmi("xnor", (3, 1, 2), {1: 0xF0F0F0F0, 2: 0xF0F0F0F0}) == NEG1

    def test_clz(self):
        assert bmi("clz", (3, 1), {1: 1}) == 31
        assert bmi("clz", (3, 1), {1: 0x80000000}) == 0
        assert bmi("clz", (3, 1), {1: 0}) == 32

    def test_ctz(self):
        assert bmi("ctz", (3, 1), {1: 0x80000000}) == 31
        assert bmi("ctz", (3, 1), {1: 1}) == 0
        assert bmi("ctz", (3, 1), {1: 0}) == 32

    def test_cpop(self):
        assert bmi("cpop", (3, 1), {1: 0}) == 0
        assert bmi("cpop", (3, 1), {1: NEG1}) == 32
        assert bmi("cpop", (3, 1), {1: 0x55555555}) == 16

    def test_min_signed(self):
        assert bmi("min", (3, 1, 2), {1: NEG1, 2: 1}) == NEG1  # -1 < 1

    def test_max_signed(self):
        assert bmi("max", (3, 1, 2), {1: NEG1, 2: 1}) == 1

    def test_rol(self):
        assert bmi("rol", (3, 1, 2), {1: 0x80000001, 2: 1}) == 0x00000003

    def test_ror(self):
        assert bmi("ror", (3, 1, 2), {1: 0x80000001, 2: 1}) == 0xC0000000

    def test_rotate_by_zero_identity(self):
        assert bmi("rol", (3, 1, 2), {1: 0x1234, 2: 0}) == 0x1234
        assert bmi("ror", (3, 1, 2), {1: 0x1234, 2: 32}) == 0x1234

    @given(st.integers(min_value=0, max_value=NEG1),
           st.integers(min_value=0, max_value=31))
    def test_rol_ror_inverse(self, value, shift):
        rotated = bmi("rol", (3, 1, 2), {1: value, 2: shift})
        back = bmi("ror", (3, 1, 2), {1: rotated, 2: shift})
        assert back == value

    @given(st.integers(min_value=0, max_value=NEG1))
    def test_clz_ctz_cpop_relations(self, value):
        clz = bmi("clz", (3, 1), {1: value})
        ctz = bmi("ctz", (3, 1), {1: value})
        cpop = bmi("cpop", (3, 1), {1: value})
        assert cpop == bin(value).count("1")
        if value:
            assert clz + ctz <= 31 or cpop == 1
        else:
            assert clz == ctz == 32 and cpop == 0


class TestKernels:
    def test_six_kernel_pairs(self):
        assert len(KERNELS) == 6

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_baseline_and_bmi_agree(self, kernel):
        comparison = compare_kernel(kernel)
        assert comparison.checksum == comparison.checksum  # ran both

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_bmi_never_slower(self, kernel):
        comparison = compare_kernel(kernel)
        assert comparison.bmi_instructions <= comparison.baseline_instructions
        assert comparison.bmi_cycles <= comparison.baseline_cycles

    def test_popcount_has_largest_class_of_speedup(self):
        rows = {row.name: row for row in evaluate_all()}
        # cpop/clz replace long software loops: biggest wins, > 2x.
        assert rows["popcount"].cycle_speedup > 2.0
        assert rows["clz-normalise"].cycle_speedup > 2.0
        # logic-op fusions are modest, > 1x.
        assert 1.0 < rows["masked-select"].cycle_speedup < 2.0

    def test_table_renders_every_kernel(self):
        rows = evaluate_all()
        text = table(rows)
        for kernel in KERNELS:
            assert kernel.name in text


class TestConfigInterop:
    def test_bmi_composes_with_compressed(self):
        decoder = Decoder(RV32IMC_ZICSR_ZBB)
        assert "cpop" in decoder.spec_by_name
        assert "c.addi" in decoder.spec_by_name

    def test_isa_string_parsing(self):
        config = IsaConfig.from_string("rv32im_zbb")
        assert "Zbb" in config.modules
