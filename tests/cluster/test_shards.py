"""Shard planning is spec-pure; the merge restores single-process bytes."""

import json

import pytest

from repro.cluster.shards import (FUZZ_DRIVER, merge_campaign_shards,
                                  plan_shards, shard_count_for)
from repro.serve.executors import execute_job
from repro.serve.jobs import JobSpec, null_context

SOURCE = """
_start:
    li s0, 8
    li s1, 0
loop:
    add s1, s1, s0
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
"""


class TestShardCount:
    def test_unsharded_spec_is_one(self):
        spec = JobSpec(kind="fault_campaign", payload={"mutants": 10})
        assert shard_count_for(spec) == 1

    def test_non_shardable_kind_is_one(self):
        spec = JobSpec(kind="vp_run", payload={})
        assert shard_count_for(spec) == 1

    def test_campaign_caps_at_mutant_count(self):
        spec = JobSpec(kind="fault_campaign",
                       payload={"mutants": 3}, shards=16)
        assert shard_count_for(spec) == 3

    def test_campaign_honors_requested_shards(self):
        spec = JobSpec(kind="fault_campaign",
                       payload={"mutants": 100}, shards=4)
        assert shard_count_for(spec) == 4

    def test_same_spec_same_count_regardless_of_callers(self):
        spec = JobSpec(kind="fault_campaign",
                       payload={"mutants": 50}, shards=5)
        assert shard_count_for(spec) == shard_count_for(spec) == 5


class TestPlanShards:
    def test_single_shard_is_passthrough(self):
        spec = JobSpec(kind="vp_run", payload={"source": "x"})
        plans = plan_shards(spec)
        assert plans == [{"kind": "vp_run", "payload": {"source": "x"},
                          "shard_index": 0, "shard_count": 1}]

    def test_campaign_plan_covers_every_index(self):
        spec = JobSpec(kind="fault_campaign",
                       payload={"source": "x", "mutants": 10}, shards=4)
        plans = plan_shards(spec)
        assert [p["kind"] for p in plans] == ["fault_campaign_shard"] * 4
        assert [p["shard_index"] for p in plans] == [0, 1, 2, 3]
        assert all(p["shard_count"] == 4 for p in plans)
        assert all(p["payload"]["shard_count"] == 4 for p in plans)

    def test_plan_is_deterministic(self):
        spec = JobSpec(kind="fault_campaign",
                       payload={"source": "x", "mutants": 8}, shards=3)
        assert plan_shards(spec) == plan_shards(spec)

    def test_sharded_fuzz_returns_driver_marker(self):
        spec = JobSpec(kind="fuzz", payload={"iterations": 100}, shards=4)
        plans = plan_shards(spec)
        assert len(plans) == 1
        assert plans[0]["kind"] == FUZZ_DRIVER
        assert plans[0]["shard_count"] == 4

    def test_unsharded_fuzz_is_passthrough(self):
        spec = JobSpec(kind="fuzz", payload={"iterations": 100})
        assert plan_shards(spec)[0]["kind"] == "fuzz"


class TestMerge:
    def _shard_results(self, payload, count):
        return [
            execute_job("fault_campaign_shard",
                        {**payload, "shard_count": count,
                         "shard_index": index},
                        null_context())
            for index in range(count)
        ]

    def test_merge_is_byte_identical_to_single_process(self):
        payload = {"source": SOURCE, "mutants": 12, "seed": 5}
        direct = execute_job("fault_campaign", payload, null_context())
        merged = merge_campaign_shards(self._shard_results(payload, 3))
        for view in (direct, merged):
            view.pop("elapsed_seconds", None)
            view.get("campaign", {}).pop("elapsed_seconds", None)
        assert json.dumps(merged, sort_keys=True) \
            == json.dumps(direct, sort_keys=True)

    def test_merge_out_of_order_shards(self):
        payload = {"source": SOURCE, "mutants": 9, "seed": 2}
        shards = self._shard_results(payload, 3)
        reordered = [shards[2], shards[0], shards[1]]
        merged = merge_campaign_shards(reordered)
        assert merged["counts"] == \
            merge_campaign_shards(shards)["counts"]

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            merge_campaign_shards([])

    def test_merge_rejects_incomplete_shard_set(self):
        payload = {"source": SOURCE, "mutants": 9, "seed": 2}
        shards = self._shard_results(payload, 3)
        with pytest.raises(ValueError, match="incomplete"):
            merge_campaign_shards(shards[:2])

    def test_merge_rejects_duplicate_indices(self):
        payload = {"source": SOURCE, "mutants": 6, "seed": 1}
        shards = self._shard_results(payload, 2)
        with pytest.raises(ValueError, match="incomplete"):
            merge_campaign_shards([shards[0], shards[0]])
