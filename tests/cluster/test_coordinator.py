"""Coordinator behavior: admission, quotas, persistence, recovery."""

import threading
import time

import pytest

from repro.cluster import (ClusterCoordinator, CoordinatorClient,
                           TenantQuotas, WorkerNode)
from repro.cluster.store import JobStore
from repro.serve import register_executor
from repro.serve.client import BackpressureError, ServiceError
from repro.serve.executors import _EXECUTORS

EXIT_OK = """
_start:
    li a0, 5
    li a7, 93
    ecall
"""


@pytest.fixture
def scratch_kinds():
    added = []

    def add(name, fn):
        register_executor(name)(fn)
        added.append(name)

    yield add
    for name in added:
        _EXECUTORS.pop(name, None)


@pytest.fixture
def coordinator():
    coord = ClusterCoordinator(port=0, node_timeout=2.0,
                               lease_timeout=5.0).start()
    yield coord
    coord.shutdown(drain=False)


def _client(coord):
    return CoordinatorClient(coord.url, timeout=10)


def _node(coord, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    return WorkerNode(coord.url, **kwargs).start()


class TestAdmission:
    def test_submit_and_result_over_http(self, coordinator):
        node = _node(coordinator)
        try:
            done = _client(coordinator).submit_and_wait(
                "vp_run", {"source": EXIT_OK}, timeout=60)
            assert done["state"] == "succeeded"
            assert done["result"]["exit_code"] == 5
            assert done["worker"] == "cluster"
        finally:
            node.stop()

    def test_unknown_kind_400(self, coordinator):
        with pytest.raises(ServiceError) as excinfo:
            _client(coordinator).submit("nope", {})
        assert excinfo.value.status == 400

    def test_shards_on_non_shardable_kind_400(self, coordinator):
        with pytest.raises(ServiceError) as excinfo:
            _client(coordinator).submit("vp_run", {"source": EXIT_OK},
                                        shards=3)
        assert excinfo.value.status == 400
        assert "cannot shard" in excinfo.value.message

    def test_result_409_while_running(self, coordinator, scratch_kinds):
        release = threading.Event()
        scratch_kinds("block", lambda payload, ctx:
                      {"ok": release.wait(30)})
        node = _node(coordinator)
        try:
            client = _client(coordinator)
            job = client.submit("block", {})
            deadline = time.monotonic() + 10
            while client.status(job["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServiceError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409
            release.set()
            assert client.wait(job["id"], timeout=30)["state"] \
                == "succeeded"
        finally:
            release.set()
            node.stop()

    def test_executor_error_fails_without_retry_elsewhere(
            self, coordinator):
        node = _node(coordinator)
        try:
            client = _client(coordinator)
            job = client.submit("vp_run", {"source": ""})
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "failed"
            # Deterministic payload failure: exactly one attempt.
            work = client.cluster_work()
            assert work["requeued_total"] == 0
        finally:
            node.stop()


class TestQuotas:
    def test_quota_429_with_retry_after(self, scratch_kinds):
        release = threading.Event()
        scratch_kinds("block", lambda payload, ctx:
                      {"ok": release.wait(30)})
        coord = ClusterCoordinator(
            port=0, quotas=TenantQuotas(limits={"acme": 1})).start()
        node = _node(coord)
        try:
            client = _client(coord)
            first = client.submit("block", {}, tenant="acme")
            with pytest.raises(BackpressureError) as excinfo:
                client.submit("block", {}, tenant="acme")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 2.0
            assert "quota" in excinfo.value.message
            # Another tenant is unaffected.
            other = client.submit("block", {}, tenant="beta")
            release.set()
            assert client.wait(first["id"], timeout=30)["state"] \
                == "succeeded"
            assert client.wait(other["id"], timeout=30)["state"] \
                == "succeeded"
            # Resolution released the quota.
            client.submit("block", {}, tenant="acme")
        finally:
            release.set()
            node.stop()
            coord.shutdown(drain=False)

    def test_cancel_releases_quota(self, coordinator, scratch_kinds):
        release = threading.Event()
        scratch_kinds("block", lambda payload, ctx:
                      {"ok": release.wait(30)})
        coordinator.quotas = TenantQuotas(limits={"acme": 1})
        node = _node(coordinator)
        try:
            client = _client(coordinator)
            job = client.submit("block", {}, tenant="acme")
            reply = client.cancel(job["id"])
            assert reply["cancelled"] is True
            done = client.wait(job["id"], timeout=30)
            assert done["state"] == "cancelled"
            # Quota slot is free again.
            client.submit("block", {}, tenant="acme")
        finally:
            release.set()
            node.stop()


class TestPersistence:
    def test_resolved_jobs_survive_restart(self, tmp_path):
        store = str(tmp_path / "jobs.jsonl")
        coord = ClusterCoordinator(port=0, store_path=store).start()
        node = _node(coord)
        done = _client(coord).submit_and_wait(
            "vp_run", {"source": EXIT_OK}, timeout=60)
        node.stop()
        coord.shutdown(drain=True, timeout=30)

        revived = ClusterCoordinator(port=0, store_path=store).start()
        try:
            fetched = _client(revived).result(done["id"])
            assert fetched["state"] == "succeeded"
            assert fetched["result"] == done["result"]
        finally:
            revived.shutdown(drain=False)

    def test_unresolved_jobs_requeue_on_restart(self, tmp_path):
        store = str(tmp_path / "jobs.jsonl")
        # Seed the log by hand: one job submitted, never resolved — the
        # shape an abrupt coordinator death leaves behind.
        with JobStore(store) as log:
            log.append_job("job-7", {"kind": "vp_run",
                                     "payload": {"source": EXIT_OK}})
        coord = ClusterCoordinator(port=0, store_path=store).start()
        node = _node(coord)
        try:
            client = _client(coord)
            # The replayed job keeps its original ID and completes once
            # a node attaches.
            done = client.wait("job-7", timeout=60)
            assert done["state"] == "succeeded"
            assert done["result"]["exit_code"] == 5
            # New IDs continue past the replayed numbering.
            fresh = client.submit("vp_run", {"source": EXIT_OK})
            assert fresh["id"] == "job-8"
        finally:
            node.stop()
            coord.shutdown(drain=False)

    def test_restart_resumes_after_abrupt_death(self, tmp_path):
        store = str(tmp_path / "jobs.jsonl")
        coord = ClusterCoordinator(port=0, store_path=store).start()
        client = _client(coord)
        pending = client.submit("vp_run", {"source": EXIT_OK})
        # Abrupt death: close the frontend and log mid-flight — no
        # drain, no resolution record.
        coord.frontend.close()
        coord.store.close()

        revived = ClusterCoordinator(port=0, store_path=store).start()
        node = _node(revived)
        try:
            done = _client(revived).wait(pending["id"], timeout=60)
            assert done["state"] == "succeeded"
        finally:
            node.stop()
            revived.shutdown(drain=False)


class TestNodeProtocol:
    def test_heartbeat_loss_requeues_lease(self, coordinator):
        client = _client(coordinator)
        reply = client.register_node(name="ghost")
        node_id = reply["id"]
        job = client.submit("vp_run", {"source": EXIT_OK})
        deadline = time.monotonic() + 10
        leased = []
        while not leased:
            assert time.monotonic() < deadline
            leased = client.lease(node_id).get("work") or []
            time.sleep(0.02)
        # The ghost never heartbeats again; within node_timeout the
        # reaper re-queues its lease and a live node finishes the job.
        node = _node(coordinator)
        try:
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "succeeded"
            stats = client.stats()["service"]["cluster"]
            assert stats["nodes_lost"] >= 1
            assert stats["work_requeued"] >= 1
        finally:
            node.stop()

    def test_unknown_node_lease_404(self, coordinator):
        with pytest.raises(ServiceError) as excinfo:
            _client(coordinator).lease("node-404")
        assert excinfo.value.status == 404

    def test_stale_completion_flagged(self, coordinator):
        client = _client(coordinator)
        node_id = client.register_node(name="a")["id"]
        client.submit("vp_run", {"source": EXIT_OK})
        deadline = time.monotonic() + 10
        leased = []
        while not leased:
            assert time.monotonic() < deadline
            leased = client.lease(node_id).get("work") or []
            time.sleep(0.02)
        item_id = leased[0]["id"]
        first = client.complete_work(item_id, result={"ok": 1})
        assert first["stale"] is False
        second = client.complete_work(item_id, result={"ok": 2})
        assert second["stale"] is True

    def test_drain_node_stops_leasing(self, coordinator):
        client = _client(coordinator)
        node_id = client.register_node(name="a")["id"]
        client.drain_node(node_id)
        client.submit("vp_run", {"source": EXIT_OK})
        assert client.lease(node_id)["drain"] is True

    def test_node_reregisters_after_coordinator_restart(self, tmp_path):
        coord = ClusterCoordinator(port=0).start()
        port = coord.frontend.port
        node = _node(coord)
        try:
            deadline = time.monotonic() + 10
            while len(coord.nodes) == 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            coord.shutdown(drain=False)
            # Same port, fresh coordinator: the node re-attaches by
            # itself once its old ID answers 404.
            revived = ClusterCoordinator(port=port).start()
            try:
                done = _client(revived).submit_and_wait(
                    "vp_run", {"source": EXIT_OK}, timeout=60)
                assert done["state"] == "succeeded"
            finally:
                revived.shutdown(drain=False)
        finally:
            node.kill()


class TestObservability:
    def test_stats_cluster_section(self, coordinator):
        node = _node(coordinator, name="alpha", capacity=2)
        try:
            client = _client(coordinator)
            deadline = time.monotonic() + 10
            while not client.nodes():
                assert time.monotonic() < deadline
                time.sleep(0.02)
            service = client.stats()["service"]
            assert service["mode"] == "cluster"
            assert service["workers"] == 2
            cluster = service["cluster"]
            assert cluster["nodes"][0]["name"] == "alpha"
            assert cluster["node_timeout"] == 2.0
        finally:
            node.stop()

    def test_metrics_exposition(self, coordinator):
        node = _node(coordinator)
        try:
            client = _client(coordinator)
            client.submit_and_wait("vp_run", {"source": EXIT_OK},
                                   timeout=60)
            text = client.metrics_text()
            assert "repro_cluster_nodes_live" in text
            assert "repro_cluster_work_done_live" in text
            assert "repro_cluster_node_executed_total" in text
        finally:
            node.stop()

    def test_health_and_kinds_match_serve_surface(self, coordinator):
        client = _client(coordinator)
        health = client.health()
        assert health["status"] == "ok"
        assert health["mode"] == "cluster"
        assert "fault_campaign" in client.kinds()

    def test_shutdown_endpoint_drains(self):
        coord = ClusterCoordinator(port=0).start()
        node = _node(coord)
        try:
            client = _client(coord)
            client.shutdown(drain=True)
            deadline = time.monotonic() + 15
            while not coord._stopped:
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            node.stop()
            coord.shutdown(drain=False)
