"""JSONL job store: append, replay, torn-line tolerance."""

import json

from repro.cluster.store import JobStore


def _spec(kind="vp_run", **extra):
    return {"kind": kind, "payload": {"source": "x"}, **extra}


class TestReplay:
    def test_missing_file_is_empty_recovery(self, tmp_path):
        recovered = JobStore.replay(str(tmp_path / "absent.jsonl"))
        assert recovered.unresolved == []
        assert recovered.resolved == {}
        assert recovered.max_job_number == 0

    def test_round_trip_unresolved_and_resolved(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.append_job("job-1", _spec())
            store.append_job("job-2", _spec())
            store.append_resolved("job-1", "succeeded",
                                  result={"exit_code": 0})
        recovered = JobStore.replay(path)
        assert recovered.unresolved == [("job-2", _spec())]
        assert recovered.resolved["job-1"]["state"] == "succeeded"
        assert recovered.resolved["job-1"]["result"] == {"exit_code": 0}
        assert recovered.resolved["job-1"]["spec"] == _spec()
        assert recovered.max_job_number == 2

    def test_unresolved_preserve_submission_order(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            for n in (3, 1, 7):
                store.append_job(f"job-{n}", _spec())
        recovered = JobStore.replay(path)
        assert [job_id for job_id, _ in recovered.unresolved] \
            == ["job-3", "job-1", "job-7"]
        assert recovered.max_job_number == 7

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.append_job("job-1", _spec())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "job", "id": "job-2", "spe')  # torn
        recovered = JobStore.replay(path)
        assert recovered.skipped_lines == 1
        assert [job_id for job_id, _ in recovered.unresolved] == ["job-1"]

    def test_resolution_without_spec_is_dropped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.append_resolved("job-9", "succeeded", result={})
        recovered = JobStore.replay(path)
        assert recovered.resolved == {}
        assert recovered.unresolved == []

    def test_failed_resolution_keeps_error(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.append_job("job-1", _spec())
            store.append_resolved("job-1", "failed", error="boom")
        recovered = JobStore.replay(path)
        assert recovered.resolved["job-1"]["error"] == "boom"

    def test_non_numeric_ids_do_not_break_numbering(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore(path) as store:
            store.append_job("custom-id", _spec())
            store.append_job("job-5", _spec())
        assert JobStore.replay(path).max_job_number == 5

    def test_appends_are_line_flushed(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        store = JobStore(path)
        try:
            store.append_job("job-1", _spec())
            # Visible to a concurrent reader before close (crash safety).
            with open(path, encoding="utf-8") as handle:
                record = json.loads(handle.readline())
            assert record["id"] == "job-1"
        finally:
            store.close()
