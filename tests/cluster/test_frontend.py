"""Selector-based HTTP frontend: routing, keep-alive, limits."""

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster.frontend import SelectorHttpServer


def _router(method, path, query, body):
    if path == "/echo":
        return 200, {"method": method, "query": query, "body": body}
    if path == "/text":
        return 200, "plain text here"
    if path == "/custom":
        return 200, "metrics 1\n", {"Content-Type": "text/custom",
                                    "X-Extra": "yes"}
    if path == "/boom":
        raise RuntimeError("handler exploded")
    if path == "/retry":
        return 429, {"error": "busy"}, {"Retry-After": "2"}
    return 404, {"error": f"no route: {path}"}


@pytest.fixture
def server():
    srv = SelectorHttpServer(_router, port=0).start()
    yield srv
    srv.close()


def _get(url, timeout=5):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read()


class TestRequests:
    def test_get_json(self, server):
        status, blob = _get(f"{server.url}/echo?a=1&b=two")
        assert status == 200
        payload = json.loads(blob)
        assert payload["method"] == "GET"
        assert payload["query"] == {"a": "1", "b": "two"}
        assert payload["body"] is None

    def test_post_json_body(self, server):
        request = urllib.request.Request(
            f"{server.url}/echo", data=json.dumps({"x": 5}).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["body"] == {"x": 5}

    def test_json_bytes_are_sorted_keys(self, server):
        _, blob = _get(f"{server.url}/echo")
        assert blob == json.dumps(json.loads(blob),
                                  sort_keys=True).encode()

    def test_text_payload(self, server):
        request = urllib.request.Request(f"{server.url}/text")
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            assert response.read() == b"plain text here"

    def test_custom_content_type_and_header(self, server):
        request = urllib.request.Request(f"{server.url}/custom")
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.headers["Content-Type"] == "text/custom"
            assert response.headers["X-Extra"] == "yes"

    def test_extra_headers_on_error_status(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/retry")
        assert excinfo.value.code == 429
        assert excinfo.value.headers["Retry-After"] == "2"

    def test_router_exception_becomes_500(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/boom")
        assert excinfo.value.code == 500
        assert "handler exploded" in excinfo.value.read().decode()

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_invalid_json_body_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/echo", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_non_object_json_body_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/echo", data=b"[1, 2]",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_oversized_body_413(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=5)
        try:
            conn.putrequest("POST", "/echo")
            conn.putheader("Content-Length", str(9 * 1024 * 1024))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()


class TestConnections:
    def test_keep_alive_reuses_one_connection(self, server):
        before = server.connections_total
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=5)
        try:
            for _ in range(3):
                conn.request("GET", "/echo")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()
        assert server.connections_total == before + 1

    def test_connection_close_honored(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=5)
        try:
            conn.request("GET", "/echo", headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.headers["Connection"] == "close"
            response.read()
        finally:
            conn.close()

    def test_many_concurrent_connections(self, server):
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    status, _ = _get(f"{server.url}/echo", timeout=10)
                    assert status == 200
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(25)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []

    def test_close_is_idempotent(self):
        srv = SelectorHttpServer(_router, port=0).start()
        srv.close()
        srv.close()

    def test_pipelined_requests_in_one_buffer(self, server):
        # Two complete requests written back-to-back are both answered.
        import socket

        raw = socket.create_connection((server.host, server.port),
                                       timeout=5)
        try:
            request = (f"GET /echo HTTP/1.1\r\nHost: {server.host}\r\n"
                       "\r\n").encode()
            raw.sendall(request + request)
            blob = b""
            while blob.count(b"HTTP/1.1 200") < 2:
                chunk = raw.recv(65536)
                if not chunk:
                    break
                blob += chunk
            assert blob.count(b"HTTP/1.1 200") == 2
        finally:
            raw.close()
