"""Per-tenant active-job quotas."""

import pytest

from repro.cluster.quotas import QuotaExceeded, TenantQuotas


class TestQuotas:
    def test_untenanted_jobs_are_exempt(self):
        quotas = TenantQuotas(default_limit=1)
        for _ in range(5):
            quotas.acquire(None)
        assert quotas.active() == {}

    def test_limit_enforced_and_released(self):
        quotas = TenantQuotas(limits={"acme": 2})
        quotas.acquire("acme")
        quotas.acquire("acme")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.acquire("acme")
        assert excinfo.value.tenant == "acme"
        assert excinfo.value.limit == 2
        quotas.release("acme")
        quotas.acquire("acme")  # back under the limit

    def test_default_limit_applies_to_unlisted_tenants(self):
        quotas = TenantQuotas(default_limit=1, limits={"vip": 3})
        quotas.acquire("other")
        with pytest.raises(QuotaExceeded):
            quotas.acquire("other")
        for _ in range(3):
            quotas.acquire("vip")
        with pytest.raises(QuotaExceeded):
            quotas.acquire("vip")

    def test_no_limits_still_accounts(self):
        quotas = TenantQuotas()
        quotas.acquire("acme")
        quotas.acquire("acme")
        assert quotas.active() == {"acme": 2}
        quotas.release("acme")
        quotas.release("acme")
        assert quotas.active() == {}

    def test_force_admits_over_limit_but_counts(self):
        quotas = TenantQuotas(limits={"acme": 1})
        quotas.acquire("acme")
        quotas.acquire("acme", force=True)  # replay path must not strand
        assert quotas.active() == {"acme": 2}
        with pytest.raises(QuotaExceeded):
            quotas.acquire("acme")

    def test_release_never_goes_negative(self):
        quotas = TenantQuotas()
        quotas.release("ghost")
        assert quotas.active() == {}

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            TenantQuotas(default_limit=0)
        with pytest.raises(ValueError):
            TenantQuotas(limits={"acme": 0})
