"""Lease table and node registry state machines."""

from repro.cluster.leases import LeaseTable, NodeRegistry


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _plan(index=0, count=1):
    return {"kind": "scratch", "payload": {"n": index},
            "shard_index": index, "shard_count": count}


class TestLeaseLifecycle:
    def test_add_then_lease_then_complete(self):
        table = LeaseTable()
        items = table.add("job-1", [_plan(0, 2), _plan(1, 2)])
        assert [item.state for item in items] == ["pending", "pending"]
        leased = table.lease("node-1", max_items=2)
        assert [item.id for item in leased] == [items[0].id, items[1].id]
        assert all(item.node == "node-1" for item in leased)
        done = table.complete(items[0].id, {"ok": True})
        assert done.state == "done"
        assert done.result == {"ok": True}
        assert table.counts() == {"pending": 0, "leased": 1, "done": 1,
                                  "failed": 0}

    def test_lease_respects_max_items(self):
        table = LeaseTable()
        table.add("job-1", [_plan(i, 3) for i in range(3)])
        assert len(table.lease("node-1", max_items=2)) == 2
        assert len(table.lease("node-2", max_items=2)) == 1
        assert table.lease("node-3") == []

    def test_complete_is_first_result_wins(self):
        table = LeaseTable()
        (item,) = table.add("job-1", [_plan()])
        table.lease("node-1")
        assert table.complete(item.id, {"v": 1}) is not None
        # A late duplicate (re-dispatched item finishing twice) is ignored.
        assert table.complete(item.id, {"v": 2}) is None
        assert table.get(item.id).result == {"v": 1}
        assert table.completed_total == 1

    def test_complete_unknown_item_is_none(self):
        assert LeaseTable().complete("work-404", {}) is None


class TestFailureAndRetry:
    def test_retryable_failure_requeues(self):
        table = LeaseTable(max_attempts=3)
        (item,) = table.add("job-1", [_plan()])
        table.lease("node-1")
        failed = table.fail(item.id, "boom")
        assert failed.state == "pending"
        assert table.requeued_total == 1
        # The item can be leased again (attempt 2).
        (again,) = table.lease("node-2")
        assert again.id == item.id
        assert again.attempts == 2

    def test_attempts_exhausted_fails_item(self):
        table = LeaseTable(max_attempts=2)
        (item,) = table.add("job-1", [_plan()])
        for _ in range(2):
            table.lease("node-1")
            table.fail(item.id, "boom")
        assert table.get(item.id).state == "failed"

    def test_non_retryable_failure_is_final(self):
        table = LeaseTable(max_attempts=5)
        (item,) = table.add("job-1", [_plan()])
        table.lease("node-1")
        assert table.fail(item.id, "bad payload",
                          retryable=False).state == "failed"

    def test_release_node_requeues_only_its_leases(self):
        table = LeaseTable()
        items = table.add("job-1", [_plan(0, 2), _plan(1, 2)])
        table.lease("node-1", max_items=1)
        table.lease("node-2", max_items=1)
        released = table.release_node("node-1")
        assert [item.id for item in released] == [items[0].id]
        assert table.get(items[0].id).state == "pending"
        assert table.get(items[1].id).state == "leased"

    def test_expire_reclaims_stale_leases(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        (item,) = table.add("job-1", [_plan()])
        table.lease("node-1")
        clock.advance(5.0)
        assert table.expire(lease_timeout=10.0) == []
        clock.advance(6.0)
        expired = table.expire(lease_timeout=10.0)
        assert [e.id for e in expired] == [item.id]
        assert table.get(item.id).state == "pending"

    def test_renew_on_heartbeat_keeps_lease_alive(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.add("job-1", [_plan()])
        table.lease("node-1")
        clock.advance(8.0)
        assert table.renew("node-1") == 1
        clock.advance(8.0)
        # 16s since lease, but only 8s since the renewing heartbeat.
        assert table.expire(lease_timeout=10.0) == []

    def test_drop_job_fails_open_items(self):
        table = LeaseTable()
        items = table.add("job-1", [_plan(0, 2), _plan(1, 2)])
        table.lease("node-1")
        table.complete(items[0].id, {})
        assert table.drop_job("job-1") == 1
        assert table.get(items[1].id).state == "failed"
        assert table.get(items[0].id).state == "done"  # untouched


class TestWait:
    def test_wait_returns_when_all_resolve(self):
        table = LeaseTable()
        items = table.add("job-1", [_plan(0, 2), _plan(1, 2)])
        table.lease("node-1", max_items=2)
        table.complete(items[0].id, {})
        table.complete(items[1].id, {})
        assert table.wait([item.id for item in items], timeout=1.0)

    def test_wait_times_out(self):
        table = LeaseTable()
        (item,) = table.add("job-1", [_plan()])
        assert not table.wait([item.id], timeout=0.1, poll=0.02)

    def test_wait_aborts(self):
        table = LeaseTable()
        (item,) = table.add("job-1", [_plan()])
        assert not table.wait([item.id], timeout=5.0, poll=0.02,
                              should_abort=lambda: True)


class TestNodeRegistry:
    def test_register_assigns_ids_and_defaults_name(self):
        nodes = NodeRegistry()
        first = nodes.register(name=None, capacity=2)
        second = nodes.register(name="beta", capacity=1)
        assert first.id == "node-1"
        assert second.id == "node-2"
        assert second.name == "beta"
        assert len(nodes) == 2

    def test_heartbeat_unknown_node_is_false(self):
        nodes = NodeRegistry()
        assert nodes.heartbeat("node-404", {}) is False

    def test_heartbeat_updates_stats(self):
        nodes = NodeRegistry()
        info = nodes.register(name="n", capacity=1)
        assert nodes.heartbeat(info.id, {"executed": 7}) is True
        (row,) = nodes.rows()
        assert row["stats"] == {"executed": 7}

    def test_expire_removes_silent_nodes(self):
        clock = FakeClock()
        nodes = NodeRegistry(clock=clock)
        quiet = nodes.register(name="quiet", capacity=1)
        noisy = nodes.register(name="noisy", capacity=1)
        clock.advance(9.0)
        nodes.heartbeat(noisy.id, {})
        clock.advance(2.0)
        dead = nodes.expire(node_timeout=10.0)
        assert [d.id for d in dead] == [quiet.id]
        assert nodes.lost_total == 1
        assert [row["id"] for row in nodes.rows()] == [noisy.id]
