"""The cluster determinism contract, pinned end-to-end over real HTTP.

A job submitted with a fixed seed and sharded across N nodes must
produce a result **byte-identical** to the single-process run of the
same spec — including when a node dies mid-run and its leases are
re-dispatched.  Wall-clock fields (``elapsed_seconds``,
``execs_per_second``) are the only permitted difference and are
stripped before comparison.
"""

import json
import time

import pytest

from repro.cluster import ClusterCoordinator, CoordinatorClient, WorkerNode
from repro.serve.executors import execute_job
from repro.serve.jobs import null_context

CAMPAIGN_SRC = """
_start:
    li s0, 40
    li s1, 0
loop:
    add s1, s1, s0
    slli t0, s1, 1
    xor s1, s1, t0
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
"""

# Heavier body for the node-kill test: each shard must run long enough
# that a kill lands mid-item (the loop dominates every mutant run).
SLOW_CAMPAIGN_SRC = CAMPAIGN_SRC.replace("li s0, 40", "li s0, 20000")


def canon_campaign(result):
    view = json.loads(json.dumps(result))
    view.pop("elapsed_seconds", None)
    if isinstance(view.get("campaign"), dict):
        view["campaign"].pop("elapsed_seconds", None)
    return json.dumps(view, sort_keys=True)


def canon_fuzz(result):
    view = json.loads(json.dumps(result))
    view.pop("elapsed_seconds", None)
    view.pop("execs_per_second", None)
    return json.dumps(view, sort_keys=True)


@pytest.fixture
def coordinator():
    coord = ClusterCoordinator(port=0, node_timeout=2.0,
                               lease_timeout=5.0).start()
    yield coord
    coord.shutdown(drain=False)


def _attach(coordinator, count, **kwargs):
    nodes = [WorkerNode(coordinator.url, name=f"n{i}", poll_interval=0.02,
                        **kwargs).start()
             for i in range(count)]
    return nodes


def _stop_all(nodes):
    for node in nodes:
        node.stop()


class TestCampaignParity:
    PAYLOAD = {"source": CAMPAIGN_SRC, "mutants": 18, "seed": 9}

    def _direct(self):
        return execute_job("fault_campaign", dict(self.PAYLOAD),
                           null_context())

    def test_one_node_sharded(self, coordinator):
        nodes = _attach(coordinator, 1)
        try:
            client = CoordinatorClient(coordinator.url, timeout=10)
            done = client.submit_and_wait("fault_campaign",
                                          dict(self.PAYLOAD),
                                          shards=4, timeout=120)
            assert done["state"] == "succeeded"
            assert canon_campaign(done["result"]) \
                == canon_campaign(self._direct())
        finally:
            _stop_all(nodes)

    def test_two_nodes_sharded(self, coordinator):
        nodes = _attach(coordinator, 2)
        try:
            client = CoordinatorClient(coordinator.url, timeout=10)
            done = client.submit_and_wait("fault_campaign",
                                          dict(self.PAYLOAD),
                                          shards=5, timeout=120)
            assert done["state"] == "succeeded"
            assert canon_campaign(done["result"]) \
                == canon_campaign(self._direct())
            # Both nodes actually participated.
            executed = [node.executed for node in nodes]
            assert sum(executed) == 5
        finally:
            _stop_all(nodes)

    def test_unsharded_job_passthrough(self, coordinator):
        nodes = _attach(coordinator, 1)
        try:
            client = CoordinatorClient(coordinator.url, timeout=10)
            done = client.submit_and_wait("fault_campaign",
                                          dict(self.PAYLOAD), timeout=120)
            assert done["state"] == "succeeded"
            assert canon_campaign(done["result"]) \
                == canon_campaign(self._direct())
        finally:
            _stop_all(nodes)


class TestNodeDeathParity:
    def test_killed_node_leases_redispatch_byte_identical(self):
        payload = {"source": SLOW_CAMPAIGN_SRC, "mutants": 12, "seed": 4}
        direct = execute_job("fault_campaign", dict(payload),
                             null_context())
        coord = ClusterCoordinator(port=0, node_timeout=1.0,
                                   lease_timeout=3.0).start()
        survivor = victim = None
        try:
            client = CoordinatorClient(coord.url, timeout=10)
            survivor = WorkerNode(coord.url, name="survivor",
                                  poll_interval=0.02).start()
            victim = WorkerNode(coord.url, name="victim",
                                poll_interval=0.02).start()
            job = client.submit("fault_campaign", dict(payload), shards=6)
            # Wait until the victim holds a lease mid-item, then crash
            # it: no completion report, no more heartbeats.
            deadline = time.monotonic() + 30
            while victim.current_item is None:
                assert time.monotonic() < deadline, \
                    "victim never picked up work"
                time.sleep(0.005)
            victim.kill()
            done = client.wait(job["id"], timeout=180)
            assert done["state"] == "succeeded"
            assert canon_campaign(done["result"]) == \
                canon_campaign(direct)
            stats = client.stats()["service"]["cluster"]
            assert stats["nodes_lost"] >= 1
            assert stats["work_requeued"] >= 1
        finally:
            if survivor is not None:
                survivor.stop()
            coord.shutdown(drain=False)


class TestVerifyParity:
    PAYLOAD = {"corpus": "torture:4", "matrix": "interp:fastpath",
               "seed": 3, "max_instructions": 2000}

    def test_sharded_verify_matches_single_process(self, coordinator):
        direct = execute_job("verify", dict(self.PAYLOAD), null_context())
        nodes = _attach(coordinator, 2)
        try:
            client = CoordinatorClient(coordinator.url, timeout=10)
            done = client.submit_and_wait("verify", dict(self.PAYLOAD),
                                          shards=4, timeout=300)
            assert done["state"] == "succeeded"
            assert canon_campaign(done["result"]) == \
                canon_campaign(direct)
            assert sum(node.executed for node in nodes) == 4
        finally:
            _stop_all(nodes)


class TestFuzzParity:
    PAYLOAD = {
        "iterations": 1000,
        "seed": 11,
        "seeds": "trivial",
        "batch_size": 64,
        "max_instructions": 150,
        "minimize": False,
    }

    def test_sharded_fuzz_matches_single_process(self, coordinator):
        direct = execute_job("fuzz", dict(self.PAYLOAD), null_context())
        nodes = _attach(coordinator, 2)
        try:
            client = CoordinatorClient(coordinator.url, timeout=10)
            done = client.submit_and_wait("fuzz", dict(self.PAYLOAD),
                                          shards=2, timeout=300)
            assert done["state"] == "succeeded"
            assert canon_fuzz(done["result"]) == canon_fuzz(direct)
        finally:
            _stop_all(nodes)
