"""Fault model and injector tests."""

import pytest

from repro.asm import assemble
from repro.faultsim import (
    Fault,
    InjectionError,
    STUCK_AT_0,
    STUCK_AT_1,
    TARGET_CODE,
    TARGET_CSR,
    TARGET_GPR,
    TARGET_MEMORY,
    TRANSIENT,
    inject,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig, RAM_BASE

EXIT = "\n    li a7, 93\n    ecall\n"


def loaded_machine(source):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(source, isa=RV32IMC_ZICSR))
    return machine


class TestFaultValidation:
    def test_valid_fault(self):
        Fault(TARGET_GPR, 5, 31, TRANSIENT, trigger=10)

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="target"):
            Fault("rom", 0, 0, TRANSIENT)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Fault(TARGET_GPR, 0, 0, "intermittent")

    def test_register_bit_range(self):
        with pytest.raises(ValueError, match="bit"):
            Fault(TARGET_GPR, 0, 32, TRANSIENT)

    def test_memory_bit_range_is_byte(self):
        with pytest.raises(ValueError, match="bit"):
            Fault(TARGET_MEMORY, RAM_BASE, 8, TRANSIENT)

    def test_register_index_range(self):
        with pytest.raises(ValueError, match="register"):
            Fault(TARGET_GPR, 32, 0, TRANSIENT)

    def test_negative_trigger(self):
        with pytest.raises(ValueError, match="trigger"):
            Fault(TARGET_GPR, 1, 0, TRANSIENT, trigger=-1)

    def test_code_faults_must_be_permanent(self):
        with pytest.raises(ValueError, match="permanent"):
            Fault(TARGET_CODE, RAM_BASE, 0, TRANSIENT)

    def test_describe_readable(self):
        text = Fault(TARGET_GPR, 5, 3, STUCK_AT_1).describe()
        assert "x5" in text and "stuck at 1" in text
        text = Fault(TARGET_MEMORY, RAM_BASE, 3, TRANSIENT, 7).describe()
        assert "transient" in text and "insn 7" in text


class TestStuckAtGpr:
    SOURCE = """
    _start:
        li a0, 0
    """ + EXIT

    def test_stuck_at_1_forces_bit(self):
        machine = loaded_machine(self.SOURCE)
        inject(machine, Fault(TARGET_GPR, 10, 4, STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 16  # a0 = 0 but bit 4 reads as 1

    def test_stuck_at_0_masks_bit(self):
        machine = loaded_machine("_start:\n    li a0, 21" + EXIT)
        inject(machine, Fault(TARGET_GPR, 10, 0, STUCK_AT_0))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 20

    def test_other_registers_unaffected(self):
        machine = loaded_machine("_start:\n    li a0, 5" + EXIT)
        inject(machine, Fault(TARGET_GPR, 11, 0, STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 5

    def test_stuck_propagates_through_computation(self):
        machine = loaded_machine("""
        _start:
            li a1, 0
            add a0, a1, a1
        """ + EXIT)
        inject(machine, Fault(TARGET_GPR, 11, 2, STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 8  # (4) + (4)


class TestTransient:
    def test_flip_applied_at_trigger(self):
        # a0 is set before the trigger point, flipped afterwards.
        machine = loaded_machine("""
        _start:
            li a0, 0
            nop
            nop
            nop
        """ + EXIT)
        plugin = inject(machine, Fault(TARGET_GPR, 10, 6, TRANSIENT,
                                       trigger=2))
        result = machine.run(max_instructions=100)
        assert plugin.fired
        assert result.exit_code == 64

    def test_flip_before_overwrite_is_masked(self):
        machine = loaded_machine("""
        _start:
            nop
            nop
            li a0, 7
        """ + EXIT)
        inject(machine, Fault(TARGET_GPR, 10, 3, TRANSIENT, trigger=0))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 7  # overwritten: fault masked

    def test_memory_transient_flips_data_before_load(self):
        source = """
        _start:
            la t0, value
            nop
            nop
            lw a0, 0(t0)
        """ + EXIT + "\n.data\nvalue: .word 0"
        program = assemble(source, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        value_addr = program.symbols["value"]
        plugin = inject(machine, Fault(TARGET_MEMORY, value_addr + 1, 2,
                                       TRANSIENT, trigger=2))
        result = machine.run(max_instructions=100)
        assert plugin.fired
        assert result.exit_code == 0x400  # bit 2 of byte 1 -> word bit 10


class TestCodeMutation:
    def test_code_bit_flip_changes_behaviour(self):
        source = "_start:\n    li a0, 1" + EXIT
        machine = loaded_machine(source)
        # addi a0, zero, 1 is the first word; flipping a bit in the
        # immediate field changes the loaded constant.
        fault = Fault(TARGET_CODE, RAM_BASE + 2, 5, STUCK_AT_1)
        inject(machine, fault)
        result = machine.run(max_instructions=100)
        assert result.stop_reason == "exit"
        assert result.exit_code != 1

    def test_code_fault_outside_ram_rejected(self):
        machine = loaded_machine("_start: nop" + EXIT)
        with pytest.raises(InjectionError):
            inject(machine, Fault(TARGET_CODE, 0x100, 0, STUCK_AT_1))


class TestStuckMemory:
    def test_memory_stuck_at_read_side(self):
        source = """
        _start:
            la t0, value
            lw a0, 0(t0)
        """ + EXIT + "\n.data\nvalue: .word 0"
        program = assemble(source, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        value_addr = program.symbols["value"]
        inject(machine, Fault(TARGET_MEMORY, value_addr, 6, STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 64

    def test_memory_stuck_survives_store(self):
        source = """
        _start:
            la t0, value
            li t1, 0
            sw t1, 0(t0)
            lw a0, 0(t0)
        """ + EXIT + "\n.data\nvalue: .word 0xFF"
        program = assemble(source, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        inject(machine, Fault(TARGET_MEMORY, program.symbols["value"], 1,
                              STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 2


class TestStuckCsr:
    def test_csr_stuck_bit(self):
        machine = loaded_machine("""
        _start:
            csrw mscratch, zero
            csrr a0, mscratch
        """ + EXIT)
        inject(machine, Fault(TARGET_CSR, 0x340, 7, STUCK_AT_1))
        result = machine.run(max_instructions=100)
        assert result.exit_code == 128
