"""XEMU-style mutation-testing tests."""

import pytest

from repro.asm import assemble
from repro.faultsim import SURVIVED, run_mutation_testing
from repro.isa import RV32IMC_ZICSR
from repro.testgen import UnitSuiteGenerator

# A self-checking binary with a strong check on its only computation.
CHECKED = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    li a3, 42
    bne a0, a3, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"""

# The same computation with no check at all: exit is always 0.
UNCHECKED = """
_start:
    li a1, 6
    li a2, 7
    mul a5, a1, a2
    li a0, 0
    li a7, 93
    ecall
"""


class TestMutationTesting:
    def test_report_accounts_for_every_mutant(self):
        program = assemble(CHECKED, isa=RV32IMC_ZICSR)
        report = run_mutation_testing(program, isa=RV32IMC_ZICSR,
                                      sample=60, seed=1)
        assert report.total == 60
        assert report.killed + len(report.survivors) == 60
        assert sum(report.by_verdict().values()) == 60

    def test_checked_program_scores_higher_than_unchecked(self):
        # Exhaustive (not sampled) to avoid sampling-noise ties.
        checked = run_mutation_testing(
            assemble(CHECKED, isa=RV32IMC_ZICSR), isa=RV32IMC_ZICSR,
            sample=None)
        unchecked = run_mutation_testing(
            assemble(UNCHECKED, isa=RV32IMC_ZICSR), isa=RV32IMC_ZICSR,
            sample=None)
        assert checked.score > unchecked.score

    def test_exhaustive_mode(self):
        program = assemble(UNCHECKED, isa=RV32IMC_ZICSR)
        report = run_mutation_testing(program, isa=RV32IMC_ZICSR,
                                      sample=None)
        _addr, blob = program.text_segment
        assert report.total == len(blob) * 8

    def test_rejects_failing_binary(self):
        program = assemble("_start:\n    li a0, 1\n    li a7, 93\n    ecall",
                           isa=RV32IMC_ZICSR)
        with pytest.raises(ValueError, match="passing self-checking"):
            run_mutation_testing(program, isa=RV32IMC_ZICSR)

    def test_rejects_nonterminating_binary(self):
        program = assemble("_start: j _start", isa=RV32IMC_ZICSR)
        with pytest.raises(ValueError, match="passing self-checking"):
            run_mutation_testing(program, isa=RV32IMC_ZICSR,
                                 min_budget=1000)

    def test_deterministic_sampling(self):
        program = assemble(CHECKED, isa=RV32IMC_ZICSR)
        a = run_mutation_testing(program, isa=RV32IMC_ZICSR, sample=30,
                                 seed=3)
        b = run_mutation_testing(program, isa=RV32IMC_ZICSR, sample=30,
                                 seed=3)
        assert [o.fault for o in a.outcomes] == [o.fault for o in b.outcomes]
        assert [o.verdict for o in a.outcomes] == \
            [o.verdict for o in b.outcomes]

    def test_table_renders(self):
        program = assemble(CHECKED, isa=RV32IMC_ZICSR)
        report = run_mutation_testing(program, isa=RV32IMC_ZICSR, sample=20)
        text = report.table()
        assert "score" in text

    def test_unit_suite_program_has_high_mutation_score(self):
        """Generated unit tests are dense with checks -> strong suite."""
        _name, program = UnitSuiteGenerator(RV32IMC_ZICSR).generate()[0]
        report = run_mutation_testing(program, isa=RV32IMC_ZICSR,
                                      sample=60, seed=4)
        assert report.score > 0.5
