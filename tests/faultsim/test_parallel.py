"""Parallel campaign engine: determinism, fallback, telemetry merge."""

import pickle
import warnings

import pytest

from repro.asm import assemble
from repro.coverage import measure_coverage
from repro.faultsim import (
    CampaignResult,
    CampaignSpec,
    FaultCampaign,
    GoldenRun,
    MutantBudget,
    default_chunk_size,
    generate_mutants,
    run_parallel,
)
from repro.faultsim import parallel as parallel_mod
from repro.isa import RV32IMC_ZICSR
from repro.telemetry import Telemetry, telemetry_session

EXIT = "\n    li a7, 93\n    ecall\n"

# A program with arithmetic, memory traffic, branches, and a self-check,
# so the generated mutants exercise every outcome class.
PROGRAM = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    la t0, scratch
    sw a0, 0(t0)
    lw a4, 0(t0)
    li t1, 0
    li t2, 5
loop:
    addi t1, t1, 1
    blt t1, t2, loop
    li a3, 42
    beq a4, a3, good
    li a0, 1
    j out
good:
    li a0, 0
out:
""" + EXIT + "\n.data\nscratch: .word 0\n"


def make_campaign():
    return FaultCampaign(assemble(PROGRAM, isa=RV32IMC_ZICSR),
                         isa=RV32IMC_ZICSR)


def seeded_faults(campaign, mutants=60, seed=7):
    golden = campaign.golden()
    coverage = measure_coverage(campaign.program, isa=RV32IMC_ZICSR)
    per = max(1, mutants // 5)
    budget = MutantBudget(code=per, gpr_transient=per, gpr_stuck=per,
                          memory_transient=per, memory_stuck=per)
    return generate_mutants(campaign.program, coverage, budget,
                            golden_instructions=golden.instructions,
                            seed=seed)


def outcomes(result):
    return [(r.fault, r.outcome, r.exit_code, r.trap_cause, r.instructions)
            for r in result.results]


class TestDeterminism:
    def test_parallel_matches_sequential(self):
        """jobs=2 and jobs=4 produce the sequential ordering + classes."""
        campaign = make_campaign()
        faults = seeded_faults(campaign)
        baseline = campaign.run(faults)
        for jobs in (2, 4):
            parallel = make_campaign().run(faults, jobs=jobs)
            assert outcomes(parallel) == outcomes(baseline)
            assert parallel.golden == baseline.golden
            assert parallel.counts == baseline.counts

    def test_chunk_size_does_not_change_results(self):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=20)
        baseline = campaign.run(faults)
        tiny = make_campaign().run(faults, jobs=2, chunk_size=1)
        assert outcomes(tiny) == outcomes(baseline)

    def test_jobs_one_uses_sequential_path(self, monkeypatch):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=10)
        monkeypatch.setattr(
            parallel_mod, "_make_pool",
            lambda *a, **k: pytest.fail("jobs=1 must not build a pool"))
        result = campaign.run(faults, jobs=1)
        assert result.total == len(faults)


class TestFallback:
    def test_pool_failure_falls_back_with_warning(self, monkeypatch):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=10)
        baseline = make_campaign().run(faults)

        def broken_pool(jobs, spec):
            raise OSError("no fork for you")

        monkeypatch.setattr(parallel_mod, "_make_pool", broken_pool)
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = campaign.run(faults, jobs=4)
        assert outcomes(result) == outcomes(baseline)

    def test_invalid_jobs_rejected(self):
        campaign = make_campaign()
        with pytest.raises(ValueError, match="jobs"):
            run_parallel(campaign, [], jobs=0)

    def test_single_fault_stays_in_process(self, monkeypatch):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=10)[:1]
        monkeypatch.setattr(
            parallel_mod, "_make_pool",
            lambda *a, **k: pytest.fail("one mutant must not build a pool"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = campaign.run(faults, jobs=4)
        assert result.total == 1


class TestSpec:
    def test_spec_is_picklable(self):
        campaign = make_campaign()
        spec = parallel_mod._spec_for(campaign)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.isa_name == campaign.isa.name
        assert clone.golden == campaign.golden()
        assert clone.program.segments == campaign.program.segments

    def test_worker_reuses_parent_golden(self):
        campaign = make_campaign()
        spec = parallel_mod._spec_for(campaign)
        parallel_mod._worker_init(spec)
        try:
            worker = parallel_mod._WORKER_CAMPAIGN
            assert worker is not None
            assert worker.golden() == campaign.golden()
        finally:
            parallel_mod._WORKER_CAMPAIGN = None


class TestChunking:
    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(1, 4) == 1
        assert 1 <= default_chunk_size(100, 4) <= parallel_mod.MAX_CHUNK
        # Huge campaigns saturate at the cap so stealing keeps working.
        assert default_chunk_size(1_000_000, 2) == parallel_mod.MAX_CHUNK

    def test_chunks_cover_all_faults(self):
        for total in (1, 7, 64, 65, 200):
            for jobs in (2, 4):
                size = default_chunk_size(total, jobs)
                covered = sum(
                    len(range(start, min(start + size, total)))
                    for start in range(0, total, size))
                assert covered == total


class TestThroughputMetric:
    def test_zero_elapsed_reports_zero_not_inf(self):
        golden = GoldenRun(exit_code=0, uart_output="", instructions=10,
                           cycles=12)
        result = CampaignResult(golden, [], 0.0)
        assert result.mutants_per_second == 0.0
        # The derived report must stay valid JSON (inf is not).
        assert CampaignResult.from_json(result.to_json()).elapsed_seconds == 0.0

    def test_positive_elapsed_unchanged(self):
        campaign = make_campaign()
        result = campaign.run(seeded_faults(campaign, mutants=10))
        assert result.mutants_per_second > 0


class TestTelemetryMerge:
    def test_parallel_run_merges_worker_metrics(self):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=30)
        with telemetry_session(Telemetry()) as session:
            result = campaign.run(faults, jobs=2)
            snap = session.metrics.to_dict()
            events = list(session.events)
        assert snap["faultsim.campaign.mutants_done"]["value"] == len(faults)
        assert snap["faultsim.campaign.jobs"]["value"] == 2
        outcome_total = sum(
            snap[f"faultsim.campaign.outcome.{o}"]["value"]
            for o in ("masked", "sdc", "trap", "hang"))
        assert outcome_total == len(faults)
        worker_keys = [key for key in snap
                       if key.startswith("faultsim.campaign.worker.")
                       and key.endswith(".mutants")]
        assert worker_keys, "per-worker throughput metrics missing"
        assert sum(snap[key]["value"] for key in worker_keys) == len(faults)

        started = [e for e in events if e["type"] == "campaign.started"]
        finished = [e for e in events if e["type"] == "campaign.finished"]
        workers = [e for e in events if e["type"] == "campaign.worker"]
        assert started and started[0]["jobs"] == 2
        assert finished and finished[0]["jobs"] == 2
        assert finished[0]["counts"] == result.counts
        assert sum(w["mutants"] for w in workers) == len(faults)

    def test_progress_callback_fires(self):
        campaign = make_campaign()
        faults = seeded_faults(campaign, mutants=20)
        seen = []
        campaign.run(faults, jobs=2, on_progress=seen.append,
                     progress_interval=0.0)
        assert seen, "on_progress never called"
        assert seen[-1]["done"] == seen[-1]["total"] == len(faults)
