"""Checkpoint engine: parity, early classification, stats, machine reuse."""

import pytest

from repro.asm import assemble
from repro.coverage import measure_coverage
from repro.faultsim import (
    CheckpointEngine,
    Fault,
    FaultCampaign,
    MutantBudget,
    OUTCOME_MASKED,
    STUCK_AT_0,
    TARGET_CODE,
    TARGET_GPR,
    TRANSIENT,
    generate_mutants,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import ICacheConfig, Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"

# Mixed-outcome program: arithmetic, memory traffic, branches, self-check.
PROGRAM = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    la t0, scratch
    sw a0, 0(t0)
    lw a4, 0(t0)
    li t1, 0
    li t2, 40
loop:
    addi t1, t1, 1
    xor a5, a4, t1
    blt t1, t2, loop
    li a3, 42
    beq a4, a3, good
    li a0, 1
    j out
good:
    li a0, 0
out:
""" + EXIT + "\n.data\nscratch: .word 0\n"

# A loop that rewrites t0 every iteration: a transient flip of t0 is
# architecturally dead and the mutant re-converges with the golden
# timeline at the next digest point.
CONVERGENT = """
_start:
    li s0, 0
    li s1, 400
loop:
    li t0, 5
    add s2, s0, t0
    addi s0, s0, 1
    blt s0, s1, loop
    li a0, 0
""" + EXIT


def make_campaign(source=PROGRAM, **kwargs):
    return FaultCampaign(assemble(source, isa=RV32IMC_ZICSR),
                         isa=RV32IMC_ZICSR, **kwargs)


def mixed_faults(campaign, mutants=40, seed=7):
    golden = campaign.golden()
    coverage = measure_coverage(campaign.program, isa=RV32IMC_ZICSR)
    per = max(1, mutants // 5)
    budget = MutantBudget(code=per, gpr_transient=per, gpr_stuck=per,
                          memory_transient=per, memory_stuck=per)
    return generate_mutants(campaign.program, coverage, budget,
                            golden_instructions=golden.instructions,
                            seed=seed)


def normalized_json(result):
    result.elapsed_seconds = 0.0
    return result.to_json()


class TestParity:
    """The acceptance bar: byte-identical CampaignResult serialization
    across {checkpoints on, off} x {sequential, jobs=4}."""

    def test_mixed_campaign_byte_identical(self):
        reference_campaign = make_campaign(checkpoints=False)
        faults = mixed_faults(reference_campaign)
        reference = normalized_json(reference_campaign.run(faults))
        for checkpoints in (False, True):
            for jobs in (1, 4):
                if not checkpoints and jobs == 1:
                    continue
                campaign = make_campaign(checkpoints=checkpoints)
                got = normalized_json(campaign.run(faults, jobs=jobs))
                assert got == reference, (
                    f"checkpoints={checkpoints} jobs={jobs} diverged")

    def test_duplicate_triggers_restore_warm(self):
        campaign = make_campaign()
        golden = campaign.golden()
        trigger = golden.instructions // 2
        faults = [Fault(TARGET_GPR, reg, reg % 31, TRANSIENT, trigger=trigger)
                  for reg in range(1, 9)]
        baseline = make_campaign(checkpoints=False)
        assert normalized_json(campaign.run(faults)) == \
            normalized_json(baseline.run(faults))
        stats = campaign.checkpoint_stats()
        # One forward pass built the checkpoint; the other seven mutants
        # restored it instead of replaying the prefix.
        assert stats["restores"] >= 7
        assert stats["instructions_skipped"] >= 7 * (trigger - 1)


class TestEarlyClassification:
    def test_dead_register_flip_exits_early(self):
        campaign = make_campaign(CONVERGENT, digest_interval=64)
        golden = campaign.golden()
        # Flip t0 right after loop entry: the next `li t0, 5` kills it.
        fault = Fault(TARGET_GPR, 5, 4, TRANSIENT,
                      trigger=golden.instructions // 2)
        result = campaign.run_one(fault)
        assert result.outcome == OUTCOME_MASKED
        assert result.exit_code == golden.exit_code
        assert result.instructions == golden.instructions
        assert campaign.checkpoint_stats()["early_exits"] == 1

    def test_early_exit_matches_full_replay(self):
        golden = make_campaign(CONVERGENT).golden()
        fault = Fault(TARGET_GPR, 5, 4, TRANSIENT,
                      trigger=golden.instructions // 2)
        fast = make_campaign(CONVERGENT, digest_interval=64).run_one(fault)
        slow = make_campaign(CONVERGENT, checkpoints=False).run_one(fault)
        assert fast == slow

    def test_trigger_beyond_exit_is_golden(self):
        campaign = make_campaign()
        golden = campaign.golden()
        fault = Fault(TARGET_GPR, 10, 0, TRANSIENT,
                      trigger=golden.instructions + 1000)
        campaign.prepare_checkpoints([fault.trigger])
        result = campaign.run_one(fault)
        assert result.outcome == OUTCOME_MASKED
        assert result.instructions == golden.instructions
        stats = campaign.checkpoint_stats()
        assert stats["early_exits"] == 1
        baseline = make_campaign(checkpoints=False).run_one(fault)
        assert result == baseline


class TestStats:
    def test_counters_track_checkpoint_work(self):
        campaign = make_campaign()
        golden = campaign.golden()
        triggers = [golden.instructions // 4, golden.instructions // 2]
        faults = [Fault(TARGET_GPR, reg, 0, TRANSIENT, trigger=trigger)
                  for trigger in triggers for reg in (5, 6)]
        campaign.run(faults)
        stats = campaign.checkpoint_stats()
        # Base snapshot + one checkpoint per distinct trigger.
        assert stats["snapshots"] >= 1 + len(triggers)
        assert stats["restores"] >= 1
        assert stats["instructions_skipped"] > 0

    def test_inactive_engine_reports_zeros(self):
        campaign = make_campaign(checkpoints=False)
        campaign.run(mixed_faults(campaign, mutants=10))
        assert campaign.checkpoint_stats() == {
            key: 0 for key in CheckpointEngine.STAT_KEYS}


class TestMachineReuse:
    """Interleaved transient / code / stuck-at mutants share machinery:
    the shared machine's snapshot restore and the engine's position
    invalidation must keep every classification independent."""

    def test_interleaved_fault_kinds_match_fresh_machines(self):
        campaign = make_campaign()
        golden = campaign.golden()
        code_addr = campaign.program.segments[0][0]
        trigger = golden.instructions // 3
        interleaved = [
            Fault(TARGET_GPR, 5, 2, TRANSIENT, trigger=trigger),
            Fault(TARGET_CODE, code_addr + 4, 4, STUCK_AT_0),
            Fault(TARGET_GPR, 11, 1, STUCK_AT_0),
            # Same trigger again *after* the machine was polluted by the
            # code patch and the stuck-at run: must restore, not reuse.
            Fault(TARGET_GPR, 5, 2, TRANSIENT, trigger=trigger),
            Fault(TARGET_CODE, code_addr + 8, 0, STUCK_AT_0),
            Fault(TARGET_GPR, 6, 3, TRANSIENT, trigger=trigger + 2),
        ]
        shared = [campaign.run_one(fault) for fault in interleaved]
        fresh_campaign = make_campaign(reuse_machine=False)
        fresh = [fresh_campaign.run_one(fault) for fault in interleaved]
        assert shared == fresh
        # Identical transients classify identically regardless of what
        # ran in between.
        assert shared[0] == shared[3]


class TestGuards:
    def test_engine_rejects_icache_machines(self):
        machine = Machine(MachineConfig(
            isa=RV32IMC_ZICSR, icache=ICacheConfig()))
        program = assemble(PROGRAM, isa=RV32IMC_ZICSR)
        machine.load(program)
        with pytest.raises(ValueError, match="icache"):
            CheckpointEngine(machine, golden_exit_code=0,
                             golden_instructions=1000)

    def test_engine_rejects_non_transient(self):
        campaign = make_campaign()
        engine = campaign._ensure_engine()
        with pytest.raises(ValueError, match="transient"):
            engine.run_transient(
                Fault(TARGET_GPR, 5, 0, STUCK_AT_0),
                campaign.instruction_budget)
