"""Mutant generation and campaign classification tests."""

import pytest

from repro.asm import assemble
from repro.coverage import measure_coverage
from repro.faultsim import (
    CampaignResult,
    Fault,
    FaultCampaign,
    MutantBudget,
    OUTCOME_HANG,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOME_TRAP,
    STUCK_AT_1,
    TARGET_CODE,
    TARGET_GPR,
    TRANSIENT,
    enumerate_code_faults,
    generate_mutants,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import RAM_BASE

EXIT = "\n    li a7, 93\n    ecall\n"

CHECKED_PROGRAM = """
# Computes 6*7 and self-checks the result.
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    li a3, 42
    beq a0, a3, good
    li a0, 1
    j out
good:
    li a0, 0
out:
""" + EXIT


def make_campaign(source=CHECKED_PROGRAM):
    return FaultCampaign(assemble(source, isa=RV32IMC_ZICSR),
                         isa=RV32IMC_ZICSR)


class TestGolden:
    def test_golden_cached(self):
        campaign = make_campaign()
        assert campaign.golden() is campaign.golden()
        assert campaign.golden().exit_code == 0

    def test_golden_must_terminate(self):
        campaign = FaultCampaign(
            assemble("_start: j _start", isa=RV32IMC_ZICSR),
            isa=RV32IMC_ZICSR, min_budget=1000, golden_budget=5000)
        with pytest.raises(ValueError, match="did not terminate"):
            campaign.golden()

    def test_budget_scales_with_golden(self):
        campaign = make_campaign()
        golden = campaign.golden()
        assert campaign.instruction_budget >= golden.instructions * 4
        assert campaign.instruction_budget >= campaign.min_budget


class TestClassification:
    def test_masked_fault(self):
        campaign = make_campaign()
        # Flip an unused register: behaviour unchanged.
        result = campaign.run_one(Fault(TARGET_GPR, 25, 3, STUCK_AT_1))
        assert result.outcome == OUTCOME_MASKED

    def test_sdc_fault(self):
        # A program whose exit code directly exposes the corrupted value
        # (no self-check): stuck bit in a0 => wrong exit code.
        campaign = make_campaign("_start:\n    li a0, 0" + EXIT)
        result = campaign.run_one(Fault(TARGET_GPR, 10, 5, STUCK_AT_1))
        assert result.outcome == OUTCOME_SDC
        assert result.exit_code == 32

    def test_self_check_converts_sdc_to_detected_exit(self):
        campaign = make_campaign()
        # Corrupt the multiply result: the self-check routes to exit 1 —
        # still "sdc" from the platform's perspective (wrong result).
        result = campaign.run_one(
            Fault(TARGET_GPR, 10, 4, STUCK_AT_1))
        assert result.outcome in (OUTCOME_SDC, OUTCOME_MASKED)

    def test_trap_fault(self):
        # Stuck bit in the upper byte of an address register: loads fault.
        campaign = make_campaign("""
        _start:
            la t0, value
            lw a0, 0(t0)
        """ + EXIT + "\n.data\nvalue: .word 5")
        result = campaign.run_one(Fault(TARGET_GPR, 5, 30, STUCK_AT_1))
        assert result.outcome == OUTCOME_TRAP

    def test_hang_fault(self):
        # Break the loop counter of a countdown: never terminates.
        campaign = FaultCampaign(assemble("""
        _start:
            li t0, 5
        loop:
            addi t0, t0, -1
            bnez t0, loop
            li a0, 0
        """ + EXIT, isa=RV32IMC_ZICSR), isa=RV32IMC_ZICSR, min_budget=2000)
        result = campaign.run_one(Fault(TARGET_GPR, 5, 20, STUCK_AT_1))
        assert result.outcome == OUTCOME_HANG

    def test_uart_difference_is_sdc(self):
        campaign = make_campaign("""
        _start:
            li t0, 0x10000000
            li t1, 'A'
            add t1, t1, a1     # a1 == 0 normally
            sb t1, 0(t0)
            li a0, 0
        """ + EXIT)
        result = campaign.run_one(Fault(TARGET_GPR, 11, 0, STUCK_AT_1))
        assert result.outcome == OUTCOME_SDC
        assert result.exit_code == 0  # exit code same; UART differs


class TestCampaignRun:
    def test_run_counts_sum(self):
        campaign = make_campaign()
        faults = [Fault(TARGET_GPR, reg, bit, STUCK_AT_1)
                  for reg in (10, 11, 25) for bit in (0, 5)]
        result = campaign.run(faults)
        assert result.total == 6
        assert sum(result.counts.values()) == 6
        assert result.elapsed_seconds > 0
        assert result.mutants_per_second > 0

    def test_of_outcome_filter(self):
        campaign = make_campaign()
        result = campaign.run([Fault(TARGET_GPR, 25, 1, STUCK_AT_1)])
        assert len(result.of_outcome(OUTCOME_MASKED)) == 1
        assert result.of_outcome(OUTCOME_TRAP) == []

    def test_table_renders(self):
        campaign = make_campaign()
        result = campaign.run([Fault(TARGET_GPR, 25, 1, STUCK_AT_1)])
        text = result.table()
        assert "masked" in text and "mutants/s" in text

    def test_normal_termination_fraction(self):
        campaign = make_campaign()
        result = campaign.run([Fault(TARGET_GPR, 25, 1, STUCK_AT_1)])
        assert result.normal_termination_fraction == 1.0


class TestSerialization:
    def test_json_round_trip(self):
        campaign = make_campaign()
        faults = [Fault(TARGET_GPR, reg, bit, STUCK_AT_1)
                  for reg in (10, 25) for bit in (0, 4)]
        faults.append(Fault(TARGET_GPR, 10, 3, TRANSIENT, trigger=2))
        result = campaign.run(faults)
        restored = CampaignResult.from_json(result.to_json())
        assert restored.golden == result.golden
        assert restored.results == result.results
        assert restored.elapsed_seconds == result.elapsed_seconds
        assert restored.counts == result.counts
        assert restored.table() == result.table()

    def test_to_json_is_plain_json(self):
        import json
        campaign = make_campaign()
        result = campaign.run([Fault(TARGET_GPR, 25, 1, STUCK_AT_1)])
        data = json.loads(result.to_json(indent=2))
        assert data["golden"]["exit_code"] == 0
        (entry,) = data["results"]
        assert entry["fault"]["target"] == "gpr"
        assert entry["outcome"] in ("masked", "sdc", "trap", "hang")


class TestMutantGeneration:
    def test_enumerate_code_faults_covers_every_bit(self):
        program = assemble("_start: nop" + EXIT, isa=RV32IMC_ZICSR)
        faults = enumerate_code_faults(program)
        _addr, blob = program.text_segment
        assert len(faults) == len(blob) * 8
        assert all(f.target == TARGET_CODE for f in faults)

    def test_code_fault_kind_inverts_existing_bit(self):
        program = assemble("_start: nop" + EXIT, isa=RV32IMC_ZICSR)
        faults = enumerate_code_faults(program)
        for fault in faults:
            byte = program.byte_at(fault.index)
            has_bit = bool(byte & fault.mask)
            assert (fault.kind == "stuck_at_0") == has_bit

    def test_generation_respects_budget(self):
        program = assemble(CHECKED_PROGRAM, isa=RV32IMC_ZICSR)
        budget = MutantBudget(code=10, gpr_transient=5, gpr_stuck=3,
                              memory_transient=0, memory_stuck=0)
        faults = generate_mutants(program, None, budget,
                                  golden_instructions=50, seed=1)
        assert len(faults) == 18

    def test_generation_deterministic_per_seed(self):
        program = assemble(CHECKED_PROGRAM, isa=RV32IMC_ZICSR)
        a = generate_mutants(program, None, MutantBudget(), 50, seed=5)
        b = generate_mutants(program, None, MutantBudget(), 50, seed=5)
        assert a == b
        c = generate_mutants(program, None, MutantBudget(), 50, seed=6)
        assert a != c

    def test_coverage_guidance_restricts_registers(self):
        program = assemble(CHECKED_PROGRAM, isa=RV32IMC_ZICSR)
        coverage = measure_coverage(program, isa=RV32IMC_ZICSR)
        budget = MutantBudget(code=0, gpr_transient=50, gpr_stuck=20,
                              memory_transient=0, memory_stuck=0)
        faults = generate_mutants(program, coverage, budget, 50, seed=2)
        accessed = coverage.gprs_accessed - {0}
        assert all(f.index in accessed for f in faults
                   if f.target == TARGET_GPR)

    def test_transient_triggers_within_golden_run(self):
        program = assemble(CHECKED_PROGRAM, isa=RV32IMC_ZICSR)
        faults = generate_mutants(
            program, None,
            MutantBudget(code=0, gpr_transient=30, gpr_stuck=0,
                         memory_transient=0, memory_stuck=0),
            golden_instructions=40, seed=3)
        assert all(f.trigger < 40 for f in faults if f.kind == TRANSIENT)

    def test_csr_budget_needs_coverage(self):
        program = assemble(CHECKED_PROGRAM, isa=RV32IMC_ZICSR)
        budget = MutantBudget(code=0, gpr_transient=0, gpr_stuck=0,
                              memory_transient=0, memory_stuck=0,
                              csr_stuck=5)
        assert generate_mutants(program, None, budget, 50) == []
