"""Unit tests for the software fault-tolerance countermeasures."""

import pytest

from repro.asm import assemble
from repro.faultsim.countermeasures import (
    BENIGN,
    DETECT_EXIT,
    DETECTED,
    SDC,
    VARIANTS,
    evaluate_countermeasures,
    table,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig


def run_variant(name):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(VARIANTS[name], isa=RV32IMC_ZICSR))
    return machine.run(max_instructions=100_000)


class TestVariants:
    def test_all_variants_compute_same_checksum(self):
        exits = {name: run_variant(name).exit_code for name in VARIANTS}
        assert len(set(exits.values())) == 1
        assert all(code != DETECT_EXIT for code in exits.values())

    def test_variants_terminate_cleanly(self):
        for name in VARIANTS:
            result = run_variant(name)
            assert result.stop_reason == "exit", name

    def test_redundant_variants_cost_more(self):
        plain = run_variant("unprotected").instructions
        dwc = run_variant("dwc").instructions
        tmr = run_variant("tmr").instructions
        assert plain < dwc < tmr
        # Redundancy overhead is roughly proportional to the copy count.
        assert dwc < 3 * plain
        assert tmr < 4 * plain

    def test_dwc_detects_a_seeded_corruption(self):
        from repro.faultsim import Fault, TARGET_GPR, TRANSIENT, inject

        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        program = assemble(VARIANTS["dwc"], isa=RV32IMC_ZICSR)
        machine.load(program)
        # Corrupt copy 0's accumulator (s2) late, after it holds state but
        # before the comparison.
        golden_insns = run_variant("dwc").instructions
        inject(machine, Fault(TARGET_GPR, 18, 9, TRANSIENT,
                              trigger=golden_insns // 2))
        result = machine.run(max_instructions=1_000_000)
        assert result.exit_code == DETECT_EXIT

    def test_tmr_corrects_a_seeded_corruption(self):
        from repro.faultsim import Fault, TARGET_GPR, TRANSIENT, inject

        golden = run_variant("tmr")
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(VARIANTS["tmr"], isa=RV32IMC_ZICSR))
        inject(machine, Fault(TARGET_GPR, 18, 9, TRANSIENT,
                              trigger=golden.instructions // 3))
        result = machine.run(max_instructions=1_000_000)
        assert result.exit_code == golden.exit_code  # corrected


class TestEvaluation:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_countermeasures(mutants=60, seed=2)

    def test_every_variant_evaluated(self, results):
        assert set(results) == set(VARIANTS)

    def test_verdicts_account_for_all_mutants(self, results):
        for result in results.values():
            assert sum(result.verdicts.values()) == result.total == 60

    def test_dwc_reduces_sdc(self, results):
        assert results["dwc"].rate(SDC) <= results["unprotected"].rate(SDC)

    def test_unprotected_cannot_detect(self, results):
        assert results["unprotected"].rate(DETECTED) == 0.0

    def test_table_lists_variants(self, results):
        text = table(results)
        for name in VARIANTS:
            assert name in text

    def test_rate_of_missing_verdict_is_zero(self, results):
        assert results["tmr"].rate("nonexistent") == 0.0
