"""Property and fuzz tests spanning decoder, assembler, and disassembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.isa import (
    Decoder,
    IllegalInstructionError,
    RV32IMCF_ZICSR,
    disassemble,
)
from repro.testgen import TortureConfig, TortureGenerator

DEC = Decoder(RV32IMCF_ZICSR)


class TestDecoderFuzz:
    """The decoder must be total: Decoded or IllegalInstructionError."""

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=500, deadline=None)
    def test_halfword_decode_never_crashes(self, word):
        try:
            decoded = DEC.decode(word)
        except IllegalInstructionError:
            return
        assert decoded.spec.length in (2, 4)
        if word & 0x3 != 0x3:
            assert decoded.spec.length == 2

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=500, deadline=None)
    def test_word_decode_never_crashes(self, word):
        try:
            decoded = DEC.decode(word)
        except IllegalInstructionError:
            return
        # A 32-bit encoding must have low bits 11; otherwise only the low
        # halfword participated.
        if word & 0x3 == 0x3:
            assert decoded.spec.length == 4
        assert decoded.spec.matches(decoded.word & decoded.spec.mask
                                    | decoded.spec.match)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=300, deadline=None)
    def test_decode_is_deterministic(self, word):
        try:
            first = DEC.decode(word)
        except IllegalInstructionError:
            with pytest.raises(IllegalInstructionError):
                DEC.decode(word)
            return
        assert DEC.decode(word) is first  # cached, hence identical


def _decoded_instructions(program):
    addr, blob = program.text_segment
    offset = 0
    while offset < len(blob):
        low = int.from_bytes(blob[offset:offset + 2], "little")
        if low & 0x3 == 0x3:
            word = int.from_bytes(blob[offset:offset + 4], "little")
        else:
            word = low
        decoded = DEC.decode(word)
        yield addr + offset, decoded
        offset += decoded.spec.length


class TestAsmDisasmRoundtrip:
    """assemble(disassemble(insn)) must reproduce the exact encoding."""

    @pytest.mark.parametrize("seed", range(6))
    def test_torture_program_roundtrip(self, seed):
        generator = TortureGenerator(RV32IMCF_ZICSR,
                                     TortureConfig(length=150, seed=seed))
        program = generator.generate()
        mismatches = []
        for pc, decoded in _decoded_instructions(program):
            text = disassemble(decoded)
            # Strip trailing branch-target comments if present.
            text = text.split("#")[0].strip()
            try:
                reassembled = assemble("_start: " + text,
                                       isa=RV32IMCF_ZICSR)
            except Exception as exc:  # pragma: no cover - diagnostic path
                mismatches.append((pc, text, f"assemble failed: {exc}"))
                continue
            _addr, blob = reassembled.text_segment
            word = int.from_bytes(blob[:decoded.spec.length], "little")
            if word != decoded.word & ((1 << (8 * decoded.spec.length)) - 1):
                mismatches.append((pc, text, f"{word:#x} != {decoded.word:#x}"))
        assert not mismatches, mismatches[:5]

    def test_handwritten_corner_encodings_roundtrip(self):
        sources = [
            "lui t0, 0xFFFFF",
            "auipc s1, 0x80000",
            "addi a0, a1, -2048",
            "sw t6, 2047(sp)",
            "lw t6, -2048(sp)",
            "jal ra, 0",
            "beq zero, zero, -4096",
            "csrrwi a0, mstatus, 31",
            "c.lui a5, 0x1f",
            "c.lui a5, 0xfffe0",
            "c.addi4spn a0, 1020",
            "c.lwsp t6, 252(sp)",
            "c.j -2048",
            "srai t0, t1, 31",
        ]
        for text in sources:
            program = assemble("_start: " + text, isa=RV32IMCF_ZICSR)
            _addr, blob = program.text_segment
            low = int.from_bytes(blob[:2], "little")
            length = 4 if low & 0x3 == 0x3 else 2
            word = int.from_bytes(blob[:length], "little")
            decoded = DEC.decode(word)
            rendered = disassemble(decoded).split("#")[0].strip()
            again = assemble("_start: " + rendered, isa=RV32IMCF_ZICSR)
            _addr2, blob2 = again.text_segment
            assert blob2[:length] == blob[:length], (text, rendered)


class TestExecutionDeterminism:
    """Identical machines produce bit-identical runs."""

    @pytest.mark.parametrize("seed", range(3))
    def test_torture_replay_equality(self, seed):
        from repro.vp import Machine, MachineConfig
        from repro.isa import RV32IMC_ZICSR

        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=200, seed=seed))
        program = generator.generate()
        snapshots = []
        for _run in range(2):
            machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
            machine.load(program)
            result = machine.run(max_instructions=100_000)
            snapshots.append((
                result.stop_reason, result.exit_code, result.instructions,
                result.cycles, machine.cpu.regs.snapshot(),
                bytes(machine.ram.data[:4096]),
            ))
        assert snapshots[0] == snapshots[1]
