"""Public-API sanity: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.isa",
    "repro.asm",
    "repro.vp",
    "repro.vp.devices",
    "repro.wcet",
    "repro.coverage",
    "repro.faultsim",
    "repro.testgen",
    "repro.bmi",
    "repro.rtos",
    "repro.core",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} must define __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_unique(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert len(exported) == len(set(exported))


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name}: missing docstrings on {undocumented}"
    )


@pytest.mark.parametrize("package_name", PACKAGES + [
    "repro", "repro.cli",
    "repro.isa.fields", "repro.isa.semantics", "repro.isa.decoder",
    "repro.vp.cpu", "repro.vp.machine", "repro.vp.timing",
    "repro.wcet.ipet", "repro.wcet.cacheanalysis",
    "repro.faultsim.campaign", "repro.rtos.model",
])
def test_module_docstrings(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip(), package_name
