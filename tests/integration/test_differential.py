"""Differential and property tests using the generators as oracles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator
from repro.vp import Machine, MachineConfig, run_lockstep


class TestStructuredDifferential:
    """The Python interpreter and the VP must agree for any seed."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_interpreter_vs_vp(self, seed):
        generated = StructuredGenerator(statements=6).generate(seed)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(generated.program)
        result = machine.run(max_instructions=2_000_000)
        assert result.stop_reason == "exit"
        assert result.exit_code == generated.expected_exit_code

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_cache_configurations_agree(self, seed):
        """TB cache on/off are lockstep-identical on generated programs."""
        generated = StructuredGenerator(statements=4).generate(seed)
        primary = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        secondary = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                          block_cache_enabled=False))
        result = run_lockstep(primary, secondary, generated.program,
                              max_instructions=2_000_000)
        assert not result.diverged

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_icache_does_not_change_results(self, seed):
        """The fetch cache affects cycles, never architectural results."""
        from repro.vp import ICacheConfig

        generated = StructuredGenerator(statements=4).generate(seed)
        plain = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        plain.load(generated.program)
        cached = Machine(MachineConfig(
            isa=RV32IMC_ZICSR, icache=ICacheConfig(miss_penalty=7)))
        cached.load(generated.program)
        a = plain.run(max_instructions=2_000_000)
        b = cached.run(max_instructions=2_000_000)
        assert a.exit_code == b.exit_code
        assert a.instructions == b.instructions
        assert b.cycles >= a.cycles

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=8, deadline=None)
    def test_wcet_invariant_on_generated_programs(self, seed):
        from repro.wcet import analyze_program

        generated = StructuredGenerator(statements=5).generate(seed)
        analysis = analyze_program(generated.source, name=generated.name)
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles
