"""Cross-module integration tests: the full tool pipelines end to end."""

import pytest

from repro.asm import assemble
from repro.core import Ecosystem
from repro.coverage import measure_coverage
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator, TortureConfig, TortureGenerator
from repro.vp import Machine, MachineConfig
from repro.wcet import (
    AitReport,
    WcetCfg,
    analyze_program,
    compute_wcet_bound,
    preprocess,
    run_ait_analysis,
)

EXIT = "\n    li a7, 93\n    ecall\n"

BUBBLE_SORT = """
# Bubble sort over an 8-word array, then checksum.
_start:
    la s0, array
    li s1, 8
outer:                     # @loopbound 8
    li t0, 0               # i
    addi t1, s1, -1
inner:                     # @loopbound 7
    slli t2, t0, 2
    add t2, t2, s0
    lw t3, 0(t2)
    lw t4, 4(t2)
    ble t3, t4, no_swap
    sw t4, 0(t2)
    sw t3, 4(t2)
no_swap:
    addi t0, t0, 1
    blt t0, t1, inner
    addi s1, s1, -1
    li t0, 1
    bgt s1, t0, outer
    # checksum: sum of elements * index
    la s0, array
    li t0, 0
    li a0, 0
    li t1, 8
check:                     # @loopbound 8
    slli t2, t0, 2
    add t2, t2, s0
    lw t3, 0(t2)
    mul t3, t3, t0
    add a0, a0, t3
    addi t0, t0, 1
    blt t0, t1, check
""" + EXIT + """
.data
array: .word 7, 3, 9, 1, 8, 2, 6, 4
"""


class TestQtaPipelineOnRealWorkloads:
    def test_bubble_sort_invariant(self):
        analysis = analyze_program(BUBBLE_SORT, name="bubble-sort")
        assert analysis.static_bound.cycles >= analysis.result.wcet_time
        assert analysis.result.wcet_time >= analysis.result.actual_cycles
        # Sorted checksum: sorted array [1,2,3,4,6,7,8,9] dot [0..7] = 226.
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(analysis.program)
        result = machine.run()
        assert result.exit_code == sum(
            v * i for i, v in enumerate(sorted([7, 3, 9, 1, 8, 2, 6, 4])))

    def test_report_serialisation_roundtrip_through_files(self, tmp_path):
        program = assemble(BUBBLE_SORT, isa=RV32IMC_ZICSR)
        from repro.wcet import loop_bounds_from_source
        bounds = loop_bounds_from_source(BUBBLE_SORT, program)
        report = run_ait_analysis(program, loop_bounds=bounds)
        xml_path = tmp_path / "report.xml"
        xml_path.write_text(report.to_xml())
        loaded = AitReport.from_xml(xml_path.read_text())
        cfg = preprocess(loaded)
        cfg_path = tmp_path / "program.qta"
        cfg_path.write_text(cfg.to_text())
        reloaded = WcetCfg.from_text(cfg_path.read_text())
        bound_direct = compute_wcet_bound(preprocess(report))
        bound_file = compute_wcet_bound(reloaded)
        assert bound_direct.cycles == bound_file.cycles

    def test_structured_programs_through_qta(self):
        generator = StructuredGenerator()
        for seed in (0, 1, 2):
            generated = generator.generate(seed)
            analysis = analyze_program(generated.source,
                                       name=generated.name)
            assert analysis.static_bound.cycles >= \
                analysis.result.actual_cycles


class TestCoverageGuidedFaultPipeline:
    def test_full_flow_on_generated_program(self):
        generated = StructuredGenerator().generate(11)
        coverage = measure_coverage(generated.program, isa=RV32IMC_ZICSR)
        campaign = FaultCampaign(generated.program, isa=RV32IMC_ZICSR)
        golden = campaign.golden()
        assert golden.exit_code == generated.expected_exit_code
        faults = generate_mutants(
            generated.program, coverage,
            MutantBudget(code=15, gpr_transient=15, gpr_stuck=5,
                         memory_transient=5, memory_stuck=2),
            golden_instructions=golden.instructions, seed=0)
        result = campaign.run(faults)
        assert result.total == 42
        # Some faults must land (the program uses its registers heavily).
        assert result.counts["masked"] < result.total

    def test_self_checking_unit_tests_catch_injected_faults(self):
        """Unit-suite programs turn corruptions into nonzero exit codes."""
        from repro.faultsim import Fault, STUCK_AT_1, TARGET_GPR
        from repro.testgen import UnitSuiteGenerator
        name, program = UnitSuiteGenerator(RV32IMC_ZICSR).generate()[0]
        campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
        # x1 is a test-operand register: sticking a bit must trip a check.
        result = campaign.run_one(Fault(TARGET_GPR, 1, 30, STUCK_AT_1))
        assert result.outcome in ("sdc", "trap")


class TestEcosystemScenario:
    """The 'evaluation of edge applications' story in one test."""

    def test_build_analyze_verify_inject(self):
        eco = Ecosystem()
        source = """
        _start:
            li a0, 0
            li t0, 0
            li t1, 12
        accumulate:          # @loopbound 12
            add a0, a0, t0
            addi t0, t0, 1
            blt t0, t1, accumulate
        """ + EXIT
        program = eco.build(source)
        _machine, run = eco.run(program)
        assert run.exit_code == 66
        wcet = eco.analyze_wcet(source)
        assert wcet.static_bound.cycles >= run.cycles
        coverage = eco.measure_coverage(program)
        assert coverage.insn_coverage > 0
        campaign = eco.fault_campaign(
            program,
            budget=MutantBudget(code=10, gpr_transient=10, gpr_stuck=5,
                                memory_transient=0, memory_stuck=0))
        assert campaign.total == 25

    def test_torture_programs_have_analyzable_cfgs(self):
        from repro.wcet import build_cfg
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=150, seed=4))
        program = generator.generate()
        cfg = build_cfg(program)
        assert cfg.entry in cfg.blocks
        total = sum(len(b) for b in cfg.blocks.values())
        assert total > 100

    def test_coverage_guides_fault_space_reduction(self):
        """Coverage-guided campaigns sample a smaller, denser space."""
        source = "_start:\n    li a0, 1\n    add a0, a0, a0" + EXIT
        program = assemble(source, isa=RV32IMC_ZICSR)
        coverage = measure_coverage(program, isa=RV32IMC_ZICSR)
        budget = MutantBudget(code=0, gpr_transient=100, gpr_stuck=0,
                              memory_transient=0, memory_stuck=0)
        guided = generate_mutants(program, coverage, budget, 10, seed=1)
        unguided = generate_mutants(program, None, budget, 10, seed=1)
        guided_regs = {f.index for f in guided}
        unguided_regs = {f.index for f in unguided}
        assert guided_regs <= coverage.gprs_accessed
        assert len(guided_regs) < len(unguided_regs)
