"""Service/cluster wiring: the verify executor, shard merge parity, and
the client-side job-kind validation."""

import json

import pytest

from repro.isa import RV32IMC_ZICSR
from repro.serve.executors import ExecutorError, execute_job, job_kinds
from repro.serve.jobs import null_context
from repro.verify import DiffCampaign, VerifyCampaignConfig

PAYLOAD = {"corpus": "torture:3", "matrix": "interp:fastpath",
           "seed": 0, "max_instructions": 2000}


def canon(report):
    view = json.loads(json.dumps(report))
    view.pop("elapsed_seconds", None)
    return json.dumps(view, sort_keys=True)


def direct_report():
    config = VerifyCampaignConfig(corpus=PAYLOAD["corpus"],
                                  matrix=PAYLOAD["matrix"],
                                  seed=PAYLOAD["seed"],
                                  max_instructions=2000)
    return DiffCampaign(RV32IMC_ZICSR, config).run().to_dict()


class TestVerifyExecutor:
    def test_job_kind_registered(self):
        assert "verify" in job_kinds()
        assert "verify_shard" in job_kinds()

    def test_verify_job_matches_direct_campaign(self):
        result = execute_job("verify", dict(PAYLOAD), null_context())
        assert canon(result) == canon(direct_report())

    def test_bad_corpus_is_executor_error(self):
        with pytest.raises(ExecutorError, match="corpus"):
            execute_job("verify", {**PAYLOAD, "corpus": "bogus"},
                        null_context())

    def test_bad_matrix_is_executor_error(self):
        with pytest.raises(ExecutorError, match="axis"):
            execute_job("verify", {**PAYLOAD, "matrix": "warp9"},
                        null_context())

    def test_shard_out_of_range_rejected(self):
        with pytest.raises(ExecutorError, match="out of range"):
            execute_job("verify_shard",
                        {**PAYLOAD, "shard_count": 2, "shard_index": 2},
                        null_context())


class TestShardMergeParity:
    def test_merged_shards_byte_identical_to_direct(self):
        from repro.cluster.shards import merge_job_shards

        shards = [
            execute_job("verify_shard",
                        {**PAYLOAD, "shard_count": 3,
                         "shard_index": index},
                        null_context())
            for index in range(3)
        ]
        merged = merge_job_shards("verify", shards)
        assert canon(merged) == canon(direct_report())

    def test_merge_restores_shard_order(self):
        from repro.cluster.shards import merge_verify_shards

        shards = [
            execute_job("verify_shard",
                        {**PAYLOAD, "shard_count": 2,
                         "shard_index": index},
                        null_context())
            for index in range(2)
        ]
        assert canon(merge_verify_shards(list(reversed(shards)))) == \
            canon(merge_verify_shards(shards))

    def test_plan_shards_covers_corpus(self):
        from repro.cluster.shards import plan_shards, shard_count_for
        from repro.serve.jobs import JobSpec

        spec = JobSpec(kind="verify", payload=dict(PAYLOAD), shards=8)
        # torture:3 caps the effective shard count at 3.
        assert shard_count_for(spec) == 3
        items = plan_shards(spec)
        assert [item["kind"] for item in items] == ["verify_shard"] * 3
        assert [item["payload"]["shard_index"] for item in items] \
            == [0, 1, 2]


class TestSubmitKindValidation:
    def test_unknown_kind_fails_fast_without_network(self, capsys):
        from repro.cli import main

        # No service is listening on this port: an unknown kind must be
        # rejected client-side before any HTTP request is attempted.
        code = main(["submit", "-", "--url", "http://127.0.0.1:1",
                     "--kind", "warp"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown job kind" in err
        for kind in ("vp_run", "fault_campaign", "fuzz", "verify"):
            assert kind in err
