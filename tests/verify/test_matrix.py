"""Matrix DSL: axes, explicit pairs, dedup, and error reporting."""

import pytest

from repro.verify import AXES, CONFIGS, parse_matrix


class TestParseMatrix:
    def test_backends_axis_expands_to_three_pairs(self):
        matrix = parse_matrix("backends")
        assert matrix.pair_names == [
            "interp~fastpath", "interp~compiled", "fastpath~compiled"]

    def test_every_axis_expands_to_known_configs(self):
        for axis, pairs in AXES.items():
            matrix = parse_matrix(axis)
            assert len(matrix.pairs) == len(pairs)
            for pair in matrix.pairs:
                assert pair.a.name in CONFIGS
                assert pair.b.name in CONFIGS

    def test_explicit_pair_token(self):
        matrix = parse_matrix("interp:compiled")
        assert matrix.pair_names == ["interp~compiled"]

    def test_axes_compose_and_dedupe(self):
        # "backends" already includes fastpath~compiled; the explicit
        # token must not duplicate it.
        matrix = parse_matrix("backends,fastpath:compiled,cache")
        assert matrix.pair_names == [
            "interp~fastpath", "interp~compiled", "fastpath~compiled",
            "fastpath~nocache"]

    def test_whitespace_tolerated(self):
        assert parse_matrix(" backends , cache ").pair_names == \
            parse_matrix("backends,cache").pair_names

    def test_unknown_axis_lists_valid_axes(self):
        with pytest.raises(ValueError, match="backends"):
            parse_matrix("nonsense")

    def test_unknown_config_in_pair_lists_configs(self):
        with pytest.raises(ValueError, match="interp"):
            parse_matrix("interp:warp9")

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            parse_matrix("interp:interp")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_matrix("  ,  ")

    def test_parse_is_deterministic(self):
        assert parse_matrix("backends,icache") == \
            parse_matrix("backends,icache")


class TestConfigs:
    def test_icache_pair_excludes_timing(self):
        matrix = parse_matrix("icache")
        assert matrix.pairs[0].compare_cycles is False

    def test_backend_pairs_compare_cycles(self):
        for pair in parse_matrix("backends").pairs:
            assert pair.compare_cycles is True

    def test_configs_lists_each_config_once(self):
        matrix = parse_matrix("backends,traces")
        names = [config.name for config in matrix.configs()]
        assert names == ["interp", "fastpath", "compiled",
                         "compiled+traces"]
        assert len(names) == len(set(names))

    def test_compiled_config_promotes_immediately(self):
        compiled = CONFIGS["compiled"]
        assert compiled.jit_threshold == 1

    def test_checkpoint_config_flags_checkpoint(self):
        assert CONFIGS["ckpt-resume"].checkpoint is True

    def test_machine_config_round_trip(self):
        from repro.isa import RV32IMC_ZICSR

        config = CONFIGS["compiled"].machine_config(RV32IMC_ZICSR)
        assert config.backend == "compiled"
        assert config.jit_threshold == 1
        nocache = CONFIGS["nocache"].machine_config(RV32IMC_ZICSR)
        assert nocache.block_cache_enabled is False
