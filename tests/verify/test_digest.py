"""Golden-state digests: capture, field-level compare, timing split."""

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.verify import capture_state, compare_digests
from repro.vp import Machine, MachineConfig

PROGRAM = """
_start:
    li t0, 0x10000000
    li t1, 77
    sw t1, 0(t0)
    li a0, 5
    li a7, 93
    ecall
"""


def run_and_capture(backend="fastpath", source=PROGRAM):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, backend=backend))
    machine.load(assemble(source, isa=RV32IMC_ZICSR))
    result = machine.run(max_instructions=1000)
    return capture_state(machine, result, machine.ram.dirty_pages())


class TestCaptureState:
    def test_captures_run_outcome(self):
        digest = run_and_capture()
        assert digest.exit_code == 5
        assert digest.uart_tx == b"M"
        assert digest.instructions > 0
        assert digest.pages            # the load image dirtied RAM

    def test_identical_runs_identical_digests(self):
        assert run_and_capture() == run_and_capture()
        assert run_and_capture().hexdigest() == \
            run_and_capture().hexdigest()

    def test_backends_agree(self):
        assert compare_digests(run_and_capture("interp"),
                               run_and_capture("fastpath")) == []


class TestCompareDigests:
    def test_equal_states_no_mismatches(self):
        assert compare_digests(run_and_capture(), run_and_capture()) == []

    def test_register_difference_names_the_register(self):
        changed = PROGRAM.replace("li a0, 5", "li a0, 6")
        mismatches = compare_digests(run_and_capture(),
                                     run_and_capture(source=changed))
        text = "; ".join(mismatches)
        assert "exit_code" in text
        assert "x10" in text          # a0 differs

    def test_uart_difference_reported(self):
        changed = PROGRAM.replace("li t1, 77", "li t1, 78")
        mismatches = compare_digests(run_and_capture(),
                                     run_and_capture(source=changed))
        assert any("uart" in entry for entry in mismatches)

    def test_timing_fields_excluded_on_request(self):
        a = run_and_capture()
        b = run_and_capture()
        # Fake a pure timing difference.
        skewed = b.__class__(**{**b.__dict__, "cycles": b.cycles + 7})
        assert compare_digests(a, skewed, include_timing=True)
        assert compare_digests(a, skewed, include_timing=False) == []

    def test_hexdigest_tracks_timing_inclusion(self):
        a = run_and_capture()
        skewed = a.__class__(**{**a.__dict__, "cycles": a.cycles + 7})
        assert a.hexdigest() != skewed.hexdigest()
        assert a.hexdigest(include_timing=False) == \
            skewed.hexdigest(include_timing=False)
