"""Campaign behavior: corpus builders, the repeat wrapper, clean runs,
and the determinism contract (pool == inline)."""

import json

import pytest

from repro.isa import RV32IMC_ZICSR
from repro.verify import (DiffCampaign, RepeatBuilder, VerifyCampaignConfig,
                          build_corpus, corpus_size_hint)


def canon(report):
    view = json.loads(json.dumps(report))
    view.pop("elapsed_seconds", None)
    return json.dumps(view, sort_keys=True)


class TestCorpus:
    def test_torture_spec_is_seeded_and_sized(self):
        corpus = build_corpus(RV32IMC_ZICSR, "torture:3", seed=1)
        assert len(corpus) == 3
        assert corpus == build_corpus(RV32IMC_ZICSR, "torture:3", seed=1)
        assert corpus != build_corpus(RV32IMC_ZICSR, "torture:3", seed=2)

    def test_fuzz_spec_is_seeded(self):
        corpus = build_corpus(RV32IMC_ZICSR, "fuzz:4", seed=0)
        assert len(corpus) == 4
        assert corpus == build_corpus(RV32IMC_ZICSR, "fuzz:4", seed=0)

    def test_suites_spec_nonempty(self):
        assert build_corpus(RV32IMC_ZICSR, "suites", seed=0)

    def test_file_spec_round_trips(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        rows = [{"name": "p0", "words": [0x00100093]},
                {"name": "p1", "words": [0x00200113, 0x00308193]}]
        path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
        corpus = build_corpus(RV32IMC_ZICSR, f"file:{path}", seed=0)
        assert corpus == [("p0", (0x00100093,)),
                          ("p1", (0x00200113, 0x00308193))]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no programs"):
            build_corpus(RV32IMC_ZICSR, f"file:{path}", seed=0)

    def test_unknown_spec_lists_the_forms(self):
        with pytest.raises(ValueError, match="torture:N"):
            build_corpus(RV32IMC_ZICSR, "bogus", seed=0)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError, match="N >= 1"):
            build_corpus(RV32IMC_ZICSR, "torture:0", seed=0)

    def test_size_hint_only_for_counted_specs(self):
        assert corpus_size_hint("torture:7") == 7
        assert corpus_size_hint("fuzz:12") == 12
        assert corpus_size_hint("suites") is None
        assert corpus_size_hint("file:/tmp/x.jsonl") is None


class TestRepeatBuilder:
    WORDS = (0x00100093, 0x00208113)  # addi x1,x0,1 ; addi x2,x1,2

    def test_wrapped_program_executes_body_repeatedly(self):
        from repro.vp import Machine, MachineConfig

        builder = RepeatBuilder(RV32IMC_ZICSR, repeats=4)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(builder.build(self.WORDS))
        machine.run(max_instructions=1000)
        # Each iteration runs the 2-word body plus 2 loop bookkeeping
        # instructions after the 1-word preamble; x28 counts to zero.
        assert machine.cpu.regs.read(28) == 0
        assert machine.cpu.regs.read(1) == 1
        assert machine.cpu.regs.read(2) == 3

    def test_repeats_one_is_plain_build(self):
        from repro.fuzz.executor import ProgramBuilder

        plain = ProgramBuilder(RV32IMC_ZICSR).build(self.WORDS)
        wrapped = RepeatBuilder(RV32IMC_ZICSR, repeats=1).build(self.WORDS)
        assert wrapped.segments == plain.segments

    def test_loop_makes_blocks_hot_enough_to_compile(self):
        from repro.vp import Machine, MachineConfig

        builder = RepeatBuilder(RV32IMC_ZICSR, repeats=4)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                        backend="compiled",
                                        jit_threshold=1))
        machine.load(builder.build(self.WORDS))
        machine.run(max_instructions=1000)
        assert machine.jit_stats()["blocks_compiled"] > 0


class TestCampaignRuns:
    CONFIG = VerifyCampaignConfig(corpus="torture:3", matrix="backends",
                                  max_instructions=3000)

    def test_clean_corpus_zero_divergences(self):
        result = DiffCampaign(RV32IMC_ZICSR, self.CONFIG).run()
        assert result.divergences == 0
        report = result.to_dict()
        assert report["programs"] == 3
        assert report["comparisons"] == 9     # 3 programs x 3 pairs
        assert report["divergences"] == 0
        assert report["findings"] == []

    def test_meta_is_deterministic(self):
        first = DiffCampaign(RV32IMC_ZICSR, self.CONFIG).meta()
        second = DiffCampaign(RV32IMC_ZICSR, self.CONFIG).meta()
        assert first == second
        assert first["corpus_digest"]

    def test_special_axes_clean(self):
        config = VerifyCampaignConfig(
            corpus="torture:2", matrix="icache,traces,checkpoint",
            max_instructions=3000)
        result = DiffCampaign(RV32IMC_ZICSR, config).run()
        assert result.divergences == 0

    def test_pool_matches_inline(self):
        config = VerifyCampaignConfig(corpus="torture:4",
                                      matrix="interp:fastpath",
                                      max_instructions=2000)
        inline = DiffCampaign(RV32IMC_ZICSR, config).run()
        pooled = DiffCampaign(
            RV32IMC_ZICSR,
            VerifyCampaignConfig(**{**config.__dict__, "jobs": 2})).run()
        assert canon(inline.to_dict()) == canon(pooled.to_dict())

    def test_table_renders(self):
        result = DiffCampaign(RV32IMC_ZICSR, VerifyCampaignConfig(
            corpus="torture:1", matrix="cache",
            max_instructions=2000)).run()
        table = result.table()
        assert "fastpath~nocache" in table
