"""Seeded-bug canary: the campaign must catch, pinpoint, and minimize a
genuine cross-tier semantics divergence."""

import pytest

from repro.isa import RV32IMC_ZICSR
from repro.isa.decoder import Decoder
from repro.verify import DiffCampaign, VerifyCampaignConfig
from repro.verify.canary import perturbed_semantics

CONFIG = VerifyCampaignConfig(corpus="torture:2", matrix="interp:compiled",
                              max_instructions=3000)


@pytest.fixture(scope="module")
def canary_result():
    with perturbed_semantics(RV32IMC_ZICSR, mnemonic="add"):
        return DiffCampaign(RV32IMC_ZICSR, CONFIG).run()


class TestCanaryDetection:
    def test_divergence_detected(self, canary_result):
        assert canary_result.divergences > 0

    def test_lockstep_pinpoints_the_perturbed_instruction(
            self, canary_result):
        record = canary_result.escalations[0]
        assert record["lockstep_clean"] is False
        assert record["kind"] == "registers"
        assert record["disasm"].split()[0] == "add"
        assert record["reg_delta"]          # the +1 shows as a reg diff

    def test_signature_names_the_bug_class(self, canary_result):
        record = canary_result.escalations[0]
        assert record["signature"].startswith("registers:")
        assert record["signature"].endswith(":add")

    def test_witness_minimized(self, canary_result):
        record = canary_result.escalations[0]
        assert 0 < len(record["words"]) < record["minimized_from"]
        assert record["minimize_evals_used"] > 0

    def test_report_dedupes_by_signature(self, canary_result):
        report = canary_result.to_dict()
        assert report["divergences"] == canary_result.divergences
        signatures = [finding["signature"]
                      for finding in report["findings"]]
        assert len(signatures) == len(set(signatures))
        assert report["classes"] == len(signatures)

    def test_findings_carry_the_repro(self, canary_result):
        finding = canary_result.to_dict()["findings"][0]
        assert finding["count"] >= 1
        assert finding["code_hex"]
        assert finding["pair"] == "interp~compiled"


class TestCanaryHygiene:
    def test_semantics_restored_after_context(self):
        spec = Decoder(RV32IMC_ZICSR).spec_by_name["add"]
        original = spec.execute
        with perturbed_semantics(RV32IMC_ZICSR, mnemonic="add"):
            assert spec.execute is not original
        assert spec.execute is original

    def test_clean_after_canary(self):
        # The previous campaigns must not leak the perturbation.
        result = DiffCampaign(RV32IMC_ZICSR, VerifyCampaignConfig(
            corpus="torture:1", matrix="interp:compiled",
            max_instructions=2000)).run()
        assert result.divergences == 0

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError, match="not decodable"):
            with perturbed_semantics(RV32IMC_ZICSR, mnemonic="warp"):
                pass

    def test_interp_pair_blind_to_tier_bug(self):
        # Both interpreted sides run the same perturbed semantics, so an
        # interp~fastpath pair must stay silent: the canary specifically
        # exercises the JIT tier boundary.
        with perturbed_semantics(RV32IMC_ZICSR, mnemonic="add"):
            result = DiffCampaign(RV32IMC_ZICSR, VerifyCampaignConfig(
                corpus="torture:1", matrix="interp:fastpath",
                max_instructions=2000)).run()
        assert result.divergences == 0
