"""Tests for the four test-program generators."""

import pytest

from repro.coverage import measure_coverage, measure_suite
from repro.isa import RV32IM, RV32IMC_ZICSR, RV32IMCF_ZICSR
from repro.testgen import (
    ArchSuiteGenerator,
    StructuredGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)
from repro.vp import Machine, MachineConfig


def run_clean(program, isa, budget=200_000):
    machine = Machine(MachineConfig(isa=isa))
    machine.load(program)
    result = machine.run(max_instructions=budget)
    return result


class TestArchSuite:
    def test_all_programs_exit_zero(self):
        for name, program in ArchSuiteGenerator(RV32IMC_ZICSR).generate():
            result = run_clean(program, RV32IMC_ZICSR)
            assert result.stop_reason == "exit", name
            assert result.exit_code == 0, name

    def test_full_instruction_coverage(self):
        suite = ArchSuiteGenerator(RV32IMCF_ZICSR).generate()
        union = measure_suite(suite, isa=RV32IMCF_ZICSR,
                              max_instructions=50_000).union
        assert union.missed_insn_types() == []
        assert union.insn_coverage == 1.0

    def test_restricted_register_palette(self):
        suite = ArchSuiteGenerator(RV32IMC_ZICSR).generate()
        union = measure_suite(suite, isa=RV32IMC_ZICSR,
                              max_instructions=50_000).union
        # By design the directed tests never reach full GPR coverage.
        assert union.gpr_coverage < 0.8

    def test_module_gating(self):
        names = [name for name, _ in ArchSuiteGenerator(RV32IM).generate()]
        assert "arch-compressed" not in names
        assert "arch-system" not in names
        assert "arch-muldiv" in names


class TestUnitSuite:
    def test_all_programs_self_check_green(self):
        for name, program in UnitSuiteGenerator(RV32IMC_ZICSR).generate():
            result = run_clean(program, RV32IMC_ZICSR)
            assert result.stop_reason == "exit", name
            assert result.exit_code == 0, f"{name} failed case {result.exit_code}"

    def test_deterministic_per_seed(self):
        a = UnitSuiteGenerator(RV32IMC_ZICSR, seed=3).generate_sources()
        b = UnitSuiteGenerator(RV32IMC_ZICSR, seed=3).generate_sources()
        assert a == b

    def test_different_seed_changes_cases(self):
        a = UnitSuiteGenerator(RV32IMC_ZICSR, seed=3).generate_sources()
        b = UnitSuiteGenerator(RV32IMC_ZICSR, seed=4).generate_sources()
        assert a != b

    def test_case_count_scales(self):
        small = UnitSuiteGenerator(RV32IMC_ZICSR, cases_per_insn=1)
        large = UnitSuiteGenerator(RV32IMC_ZICSR, cases_per_insn=5)
        assert len(large.generate_sources()[0][1]) > \
            len(small.generate_sources()[0][1])

    def test_failure_exits_with_case_number(self):
        # Sabotage: corrupt a known-good case via fault injection on the
        # comparison register -- instead simply check the fail path exists
        # by assembling a program that fails its first check.
        from repro.asm import assemble
        source = "\n".join([
            ".text", "_start:",
            "    li t3, 1",
            "    li a4, 5",
            "    li a5, 6",
            "    bne a4, a5, fail",
            "    li a0, 0", "    li a7, 93", "    ecall",
            "fail:", "    mv a0, t3", "    li a7, 93", "    ecall",
        ])
        result = run_clean(assemble(source, isa=RV32IMC_ZICSR),
                           RV32IMC_ZICSR)
        assert result.exit_code == 1


class TestTorture:
    def test_programs_terminate_cleanly(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=200))
        for seed in range(5):
            result = run_clean(generator.generate(seed), RV32IMC_ZICSR)
            assert result.stop_reason == "exit", seed
            assert result.exit_code == 0, seed

    def test_deterministic_per_seed(self):
        generator = TortureGenerator(RV32IMC_ZICSR)
        assert generator.generate_source(7) == generator.generate_source(7)
        assert generator.generate_source(7) != generator.generate_source(8)

    def test_full_gpr_coverage_single_program(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=500, seed=0))
        report = measure_coverage(generator.generate(), isa=RV32IMC_ZICSR,
                                  max_instructions=100_000)
        assert report.gpr_coverage == 1.0

    def test_never_emits_unsafe_instructions(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=300, seed=2))
        source = generator.generate_source()
        body = source.split("_start:")[1].rsplit("li a7", 1)[0]
        for unsafe in ("ebreak", "wfi", "mret", "jalr", "jr "):
            assert unsafe not in body, unsafe

    def test_suite_generation_names_and_seeds(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=50))
        suite = generator.generate_suite(3, start_seed=10)
        assert [name for name, _ in suite] == \
            ["torture-010", "torture-011", "torture-012"]

    def test_fpr_coverage_with_f(self):
        generator = TortureGenerator(
            RV32IMCF_ZICSR, TortureConfig(length=600, seed=1,
                                          fp_probability=0.3))
        report = measure_coverage(generator.generate(), isa=RV32IMCF_ZICSR,
                                  max_instructions=100_000)
        assert report.fpr_coverage > 0.5


class TestStructuredGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_checksum_matches_interpreter(self, seed):
        generated = StructuredGenerator().generate(seed)
        result = run_clean(generated.program, RV32IMC_ZICSR,
                           budget=1_000_000)
        assert result.stop_reason == "exit"
        assert result.exit_code == generated.expected_exit_code

    def test_deterministic(self):
        a = StructuredGenerator().generate(3)
        b = StructuredGenerator().generate(3)
        assert a.source == b.source
        assert a.expected_checksum == b.expected_checksum

    def test_loop_bound_annotations_present(self):
        # Generated loops carry @loopbound annotations for the WCET flow.
        for seed in range(20):
            source = StructuredGenerator().generate(seed).source
            if "loop" in source:
                assert "@loopbound" in source
                return
        pytest.skip("no seed produced a loop (unexpected)")

    def test_suite_generation(self):
        suite = StructuredGenerator().generate_suite(4, start_seed=2)
        assert len(suite) == 4
        assert suite[0].name == "gen-0002"

    def test_interpreter_masks_to_32_bits(self):
        generator = StructuredGenerator()
        ast = [("assign", 0, ("binop", "mul",
                              ("const", 0x10000), ("const", 0x10000)))]
        assert generator.interpret(ast) == 0


class TestSuiteComposition:
    """The T1 experiment shape at unit-test scale."""

    def test_no_single_suite_is_complete_but_union_is(self):
        isa = RV32IMC_ZICSR
        arch = measure_suite(ArchSuiteGenerator(isa).generate(), isa=isa,
                             max_instructions=50_000).union
        torture_gen = TortureGenerator(isa, TortureConfig(length=400))
        torture = measure_suite(torture_gen.generate_suite(2), isa=isa,
                                max_instructions=100_000).union
        unit = measure_suite(UnitSuiteGenerator(isa).generate(), isa=isa,
                             max_instructions=50_000).union
        # Individual tradeoffs.
        assert arch.gpr_coverage < 1.0          # narrow palette
        assert torture.insn_coverage < 1.0      # misses system insns
        assert unit.insn_coverage < arch.insn_coverage
        # The union closes the register gap.
        combined = arch | torture | unit
        assert combined.gpr_coverage == 1.0
        assert combined.insn_coverage >= 0.98
