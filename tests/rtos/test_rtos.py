"""Abstract RTOS model tests: RTA, simulation, and their bracketing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtos import (
    TaskSpec,
    analyze_taskset,
    assign_priorities,
    hyperperiod,
    response_time_analysis,
    simulate,
    total_utilization,
)


class TestTaskSpec:
    def test_valid(self):
        task = TaskSpec("t", period=100, wcet=10)
        assert task.effective_deadline == 100
        assert task.utilization == 0.1

    def test_explicit_deadline(self):
        assert TaskSpec("t", 100, 10, deadline=50).effective_deadline == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("t", 0, 1)
        with pytest.raises(ValueError):
            TaskSpec("t", 10, 0)
        with pytest.raises(ValueError):
            TaskSpec("t", 10, 11)
        with pytest.raises(ValueError):
            TaskSpec("t", 10, 5, deadline=20)


class TestPriorities:
    def test_rate_monotonic_by_default(self):
        ordered = assign_priorities([
            TaskSpec("slow", 1000, 10),
            TaskSpec("fast", 10, 1),
            TaskSpec("mid", 100, 5),
        ])
        assert [t.name for t in ordered] == ["fast", "mid", "slow"]

    def test_explicit_priorities_respected(self):
        ordered = assign_priorities([
            TaskSpec("low", 10, 1, priority=1),
            TaskSpec("high", 1000, 10, priority=5),
        ])
        assert [t.name for t in ordered] == ["high", "low"]

    def test_deterministic_tie_break(self):
        a = assign_priorities([TaskSpec("b", 10, 1), TaskSpec("a", 10, 1)])
        assert [t.name for t in a] == ["a", "b"]


class TestRta:
    def test_single_task(self):
        result = response_time_analysis([TaskSpec("t", 100, 30)])
        assert result.bound("t") == 30
        assert result.schedulable

    def test_classic_example(self):
        # Liu & Layland style: R2 = C2 + ceil(R2/T1)*C1.
        result = response_time_analysis([
            TaskSpec("hi", 50, 20),
            TaskSpec("lo", 100, 35),
        ])
        assert result.bound("hi") == 20
        # R = 35 + ceil(R/50)*20 -> 55 -> 35+2*20=75 -> 75 stable.
        assert result.bound("lo") == 75
        assert result.schedulable

    def test_unschedulable_diverges(self):
        result = response_time_analysis([
            TaskSpec("hi", 10, 6),
            TaskSpec("lo", 15, 9),
        ])
        assert result.bound("lo") is None
        assert not result.schedulable

    def test_full_utilization_harmonic_schedulable(self):
        # Harmonic periods schedule up to 100% utilization under RM.
        result = response_time_analysis([
            TaskSpec("a", 10, 5),
            TaskSpec("b", 20, 10),
        ])
        assert result.schedulable
        assert result.bound("b") == 20


class TestSimulation:
    def test_idle_gaps_skipped(self):
        result = simulate([TaskSpec("t", 100, 5)], horizon=1000)
        assert result.jobs_completed["t"] == 10
        assert result.max_response["t"] == 5

    def test_preemption(self):
        result = simulate([
            TaskSpec("hi", 50, 20),
            TaskSpec("lo", 100, 35),
        ], horizon=100)
        # lo runs in the gaps: 20..50 (30 units) then 70..75.
        assert result.max_response["lo"] == 75
        assert not result.missed

    def test_miss_detected(self):
        result = simulate([
            TaskSpec("hi", 10, 6),
            TaskSpec("lo", 15, 9),
        ], horizon=60)
        assert result.missed
        assert any(name == "lo" for name, _t in result.deadline_misses)

    def test_hyperperiod(self):
        tasks = [TaskSpec("a", 6, 1), TaskSpec("b", 8, 1)]
        assert hyperperiod(tasks) == 24

    def test_hyperperiod_capped(self):
        tasks = [TaskSpec("a", 99991, 1), TaskSpec("b", 99989, 1)]
        assert hyperperiod(tasks, cap=10_000) == 10_000

    def test_every_released_job_accounted(self):
        tasks = [TaskSpec("a", 10, 2), TaskSpec("b", 25, 5)]
        result = simulate(tasks)
        for task in tasks:
            assert result.jobs_released[task.name] >= \
                result.jobs_completed[task.name]


class TestBracketing:
    """RTA bound must dominate the simulated critical-instant response."""

    @pytest.mark.parametrize("tasks", [
        [TaskSpec("a", 100, 20), TaskSpec("b", 250, 60),
         TaskSpec("c", 1000, 150)],
        [TaskSpec("a", 10, 5), TaskSpec("b", 20, 10)],
        [TaskSpec("a", 7, 2), TaskSpec("b", 11, 3), TaskSpec("c", 13, 3)],
    ])
    def test_rta_dominates_simulation(self, tasks):
        report = analyze_taskset(tasks)
        assert report.consistent
        if report.rta.schedulable:
            assert not report.simulation.missed

    @given(st.lists(
        st.tuples(st.integers(min_value=5, max_value=50),
                  st.integers(min_value=1, max_value=10)),
        min_size=1, max_size=4,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_rta_vs_simulation(self, raw):
        tasks = []
        for index, (period, wcet) in enumerate(raw):
            tasks.append(TaskSpec(f"t{index}", period,
                                  min(wcet, period)))
        if total_utilization(tasks) > 1.0:
            return  # overloaded sets may legitimately diverge/miss
        report = analyze_taskset(tasks)
        assert report.consistent
        if report.rta.schedulable:
            assert not report.simulation.missed


class TestReport:
    def test_table_contents(self):
        report = analyze_taskset([
            TaskSpec("ctrl", 100, 20), TaskSpec("log", 1000, 100),
        ])
        text = report.table()
        assert "ctrl" in text and "log" in text
        assert "schedulable" in text

    def test_wcet_integration(self):
        from repro.rtos import taskset_from_wcet_analyses
        from repro.wcet import analyze_program

        source = """
        _start:
            li t0, 0
            li t1, 5
        w:                 # @loopbound 5
            addi t0, t0, 1
            blt t0, t1, w
            li a7, 93
            ecall
        """
        analysis = analyze_program(source)
        tasks = taskset_from_wcet_analyses([
            ("kernel", analysis, analysis.static_bound.cycles * 4),
        ])
        assert tasks[0].wcet == analysis.static_bound.cycles
        report = analyze_taskset(tasks)
        assert report.rta.schedulable
