"""Disassembly-listing tests."""

import pytest

from repro.asm import assemble, render_listing
from repro.isa import RV32IMC_ZICSR

SOURCE = """
_start:
    li a0, 5
    call helper
    li a7, 93
    ecall
helper:
    addi a0, a0, 1
    ret
.data
message: .asciz "Hi!"
numbers: .word 0x11223344
"""


@pytest.fixture
def listing():
    return render_listing(assemble(SOURCE, isa=RV32IMC_ZICSR))


class TestListing:
    def test_header_mentions_entry_and_isa(self, listing):
        assert "entry 0x80000000" in listing
        assert "RV32IMC_Zicsr" in listing

    def test_symbols_rendered_as_labels(self, listing):
        assert "<_start>:" in listing
        assert "<helper>:" in listing
        assert "<message>:" in listing

    def test_code_disassembled(self, listing):
        assert "addi a0, zero, 5" in listing
        assert "jalr zero, ra, 0" in listing  # ret

    def test_addresses_and_encodings_present(self, listing):
        assert "80000000:" in listing
        assert "00500513" in listing  # li a0, 5

    def test_data_hexdump_with_ascii_gutter(self, listing):
        assert "|Hi!" in listing
        assert "44 33 22 11" in listing

    def test_segment_boundaries_reported(self, listing):
        assert "code):" in listing
        assert "data):" in listing

    def test_compressed_instructions_listed(self):
        listing = render_listing(assemble(
            "_start:\n    c.addi a0, 1\n    li a7, 93\n    ecall",
            isa=RV32IMC_ZICSR))
        assert "c.addi a0, 1" in listing

    def test_undecodable_words_fall_back_to_directives(self):
        listing = render_listing(assemble(
            "_start:\n    nop\n    .word 0xFFFFFFFF", isa=RV32IMC_ZICSR))
        assert ".word 0xffffffff" in listing

    def test_branch_targets_annotated(self):
        listing = render_listing(assemble(
            "_start:\nloop:\n    j loop", isa=RV32IMC_ZICSR))
        assert "-> 0x80000000" in listing
