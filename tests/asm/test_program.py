"""Program image tests: segments, symbols, patching, serialisation."""

import pytest

from repro.asm import Program


def make_program():
    return Program(
        segments=[(0x8000_0000, b"\x13\x00\x00\x00"), (0x8000_0100, b"\x01\x02")],
        entry=0x8000_0000,
        symbols={"_start": 0x8000_0000, "data": 0x8000_0100},
        isa_name="RV32IMC",
    )


class TestStructure:
    def test_segments_sorted(self):
        prog = Program(
            segments=[(0x200, b"b"), (0x100, b"a")], entry=0x100,
        )
        assert [addr for addr, _ in prog.segments] == [0x100, 0x200]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Program(segments=[(0x100, b"abcd"), (0x102, b"x")], entry=0x100)

    def test_adjacent_segments_allowed(self):
        Program(segments=[(0x100, b"ab"), (0x102, b"cd")], entry=0x100)

    def test_text_segment_contains_entry(self):
        prog = make_program()
        assert prog.text_segment[0] == 0x8000_0000

    def test_text_segment_missing_entry_raises(self):
        prog = Program(segments=[(0x100, b"ab")], entry=0x500)
        with pytest.raises(ValueError):
            _ = prog.text_segment

    def test_total_size(self):
        assert make_program().total_size == 6

    def test_address_of(self):
        assert make_program().address_of("data") == 0x8000_0100
        with pytest.raises(KeyError):
            make_program().address_of("nope")

    def test_byte_at(self):
        prog = make_program()
        assert prog.byte_at(0x8000_0101) == 0x02
        with pytest.raises(ValueError):
            prog.byte_at(0x9000_0000)


class TestPatching:
    def test_patch_replaces_bytes(self):
        patched = make_program().with_patch(0x8000_0001, b"\xFF")
        assert patched.byte_at(0x8000_0001) == 0xFF

    def test_patch_leaves_original_untouched(self):
        original = make_program()
        original.with_patch(0x8000_0001, b"\xFF")
        assert original.byte_at(0x8000_0001) == 0x00

    def test_patch_outside_segments_raises(self):
        with pytest.raises(ValueError):
            make_program().with_patch(0x9000_0000, b"\x00")

    def test_patch_straddling_segment_end_raises(self):
        with pytest.raises(ValueError):
            make_program().with_patch(0x8000_0003, b"\x00\x00")


class TestSerialisation:
    def test_json_roundtrip(self):
        prog = make_program()
        clone = Program.from_json(prog.to_json())
        assert clone.segments == prog.segments
        assert clone.entry == prog.entry
        assert clone.symbols == prog.symbols
        assert clone.isa_name == prog.isa_name

    def test_from_json_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            Program.from_json('{"format": "elf"}')
