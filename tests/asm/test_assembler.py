"""Assembler tests: syntax, pseudo-instructions, sections, expressions."""

import pytest

from repro.asm import AsmError, Assembler, assemble
from repro.isa import Decoder, IsaConfig, RV32I, RV32IMC_ZICSR, disassemble

from ..conftest import run_asm

BASE = 0x8000_0000


def words_of(program):
    """Decode the text segment back to mnemonics."""
    dec = Decoder(RV32IMC_ZICSR)
    addr, blob = program.text_segment
    out = []
    offset = 0
    while offset < len(blob):
        low = int.from_bytes(blob[offset:offset + 2], "little")
        if low & 3 == 3:
            word = int.from_bytes(blob[offset:offset + 4], "little")
            length = 4
        else:
            word, length = low, 2
        out.append(dec.decode(word))
        offset += length
    return out


class TestBasics:
    def test_single_instruction(self):
        prog = assemble("addi a0, zero, 1")
        assert prog.text_segment == (BASE, b"\x13\x05\x10\x00")

    def test_labels_and_branches(self):
        prog = assemble("""
        loop: addi a0, a0, 1
              bne a0, a1, loop
        """)
        insns = words_of(prog)
        assert insns[1].spec.name == "bne"
        assert insns[1].imm == -4

    def test_forward_reference(self):
        prog = assemble("""
            beq a0, a1, done
            addi a0, a0, 1
        done:
            addi a0, a0, 2
        """)
        assert words_of(prog)[0].imm == 8

    def test_numeric_branch_offset_is_raw(self):
        prog = assemble("beq a0, a1, 12")
        assert words_of(prog)[0].imm == 12

    def test_comments_stripped(self):
        prog = assemble("""
        # full line comment
        addi a0, zero, 1  # trailing
        addi a1, zero, 2  // c++ style
        addi a2, zero, 3  ; asm style
        """)
        assert len(words_of(prog)) == 3

    def test_label_on_own_line(self):
        prog = assemble("""
        start:
            addi a0, zero, 7
        """)
        assert prog.symbols["start"] == BASE

    def test_entry_defaults_to_base_without_start(self):
        assert assemble("nop").entry == BASE

    def test_entry_is_start_symbol(self):
        prog = assemble("""
        nop
        _start: nop
        """)
        assert prog.entry == BASE + 4

    def test_multiple_labels_same_address(self):
        prog = assemble("""
        a:
        b: nop
        """)
        assert prog.symbols["a"] == prog.symbols["b"]

    def test_compressed_mnemonics(self):
        prog = assemble("c.addi a0, 1\nc.nop" if False else "c.addi a0, 1")
        addr, blob = prog.text_segment
        assert len(blob) == 2


class TestPseudoInstructions:
    def test_nop(self):
        assert disassemble(words_of(assemble("nop"))[0]) == \
            "addi zero, zero, 0"

    def test_li_small(self):
        insns = words_of(assemble("li a0, 100"))
        assert len(insns) == 1 and insns[0].spec.name == "addi"

    def test_li_large_two_instructions(self):
        insns = words_of(assemble("li a0, 0x12345678"))
        assert [d.spec.name for d in insns] == ["lui", "addi"]

    def test_li_large_value_correct(self):
        _machine, result = run_asm("""
        _start:
            li a0, 0x12345678
            li a7, 93
            ecall
        """)
        assert result.exit_code == 0x12345678 & 0x7FFFFFFF or True
        assert _machine.cpu.regs.raw_read(10) == 0x12345678

    def test_li_negative(self):
        machine, _ = run_asm("""
        _start:
            li a0, -1
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == 0xFFFFFFFF

    def test_li_hi_boundary(self):
        # 0x7FFFF800 has lo12 = -2048: the lui/addi pair must still work.
        machine, _ = run_asm("""
        _start:
            li a0, 0x7FFFF800
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == 0x7FFFF800

    def test_la_resolves_symbol(self):
        machine, _ = run_asm("""
        _start:
            la a0, value
            lw a0, 0(a0)
            li a7, 93
            ecall
        .data
        value: .word 1234
        """)
        assert machine.cpu.regs.raw_read(10) == 1234

    def test_mv_not_neg(self):
        names = [d.spec.name for d in words_of(assemble(
            "mv a0, a1\nnot a2, a3\nneg a4, a5"))]
        assert names == ["addi", "xori", "sub"]

    def test_branch_pseudos(self):
        source = "\n".join([
            "x: beqz a0, x", "bnez a0, x", "blez a0, x", "bgez a0, x",
            "bltz a0, x", "bgtz a0, x", "bgt a0, a1, x", "ble a0, a1, x",
            "bgtu a0, a1, x", "bleu a0, a1, x",
        ])
        names = [d.spec.name for d in words_of(assemble(source))]
        assert names == ["beq", "bne", "bge", "bge", "blt", "blt",
                         "blt", "bge", "bltu", "bgeu"]

    def test_j_and_call_and_ret(self):
        names = [d.spec.name for d in words_of(assemble(
            "x: j x\ncall x\nret\njr a0\ntail x"))]
        assert names == ["jal", "jal", "jalr", "jalr", "jal"]

    def test_csr_pseudos(self):
        insns = words_of(assemble(
            "csrr a0, mscratch\ncsrw mscratch, a0\ncsrwi mscratch, 5"))
        assert [d.spec.name for d in insns] == ["csrrs", "csrrw", "csrrwi"]
        assert insns[0].csr == 0x340

    def test_rdcycle(self):
        insn = words_of(assemble("rdcycle a0"))[0]
        assert insn.spec.name == "csrrs" and insn.csr == 0xC00

    def test_seqz_snez(self):
        names = [d.spec.name for d in words_of(assemble(
            "seqz a0, a1\nsnez a0, a1\nsltz a0, a1\nsgtz a0, a1"))]
        assert names == ["sltiu", "sltu", "slt", "slt"]


class TestDataDirectives:
    def test_word_half_byte(self):
        prog = assemble("""
        .data
        w: .word 0x11223344
        h: .half 0x5566
        b: .byte 0x77, 0x88
        """)
        data_addr, blob = prog.segments[-1]
        assert blob == bytes.fromhex("44332211" "6655" "7788")

    def test_ascii_and_asciz(self):
        prog = assemble("""
        .data
        a: .ascii "AB"
        z: .asciz "CD"
        """)
        _addr, blob = prog.segments[-1]
        assert blob == b"ABCD\x00"

    def test_string_escapes(self):
        prog = assemble('.data\ns: .asciz "a\\n\\t\\0\\"b"')
        _addr, blob = prog.segments[-1]
        assert blob == b'a\n\t\x00"b\x00'

    def test_zero_and_align(self):
        prog = assemble("""
        .data
        .byte 1
        .align 2
        aligned: .word 2
        """)
        assert prog.symbols["aligned"] % 4 == 0

    def test_word_with_symbol_expression(self):
        prog = assemble("""
        .data
        a: .word 0
        ptr: .word a + 4
        """)
        data_addr, blob = prog.segments[-1]
        value = int.from_bytes(blob[4:8], "little")
        assert value == prog.symbols["a"] + 4

    def test_data_follows_text_aligned(self):
        prog = assemble("""
        nop
        .data
        d: .word 1
        """)
        assert prog.symbols["d"] == (BASE + 4 + 15) & ~15

    def test_equ_constants(self):
        machine, _ = run_asm("""
        .equ ANSWER, 42
        _start:
            li a0, ANSWER
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == 42

    def test_explicit_data_base(self):
        prog = Assembler(data_base=0x8010_0000).assemble("""
        nop
        .data
        d: .word 1
        """)
        assert prog.symbols["d"] == 0x8010_0000


class TestExpressions:
    def test_hi_lo_pair(self):
        machine, _ = run_asm("""
        _start:
            lui a0, %hi(target)
            addi a0, a0, %lo(target)
            li a7, 93
            ecall
        .data
        target: .word 0
        """)
        prog_addr = machine.cpu.regs.raw_read(10)
        assert prog_addr >= BASE

    def test_char_literal(self):
        machine, _ = run_asm("""
        _start:
            li a0, 'A'
            li a7, 93
            ecall
        """)
        assert machine.cpu.regs.raw_read(10) == ord("A")

    def test_addition_chain(self):
        prog = assemble(".equ A, 10\n.equ B, A + 5\n.data\nv: .word B - 2")
        _addr, blob = prog.segments[-1]
        assert int.from_bytes(blob, "little") == 13

    def test_negative_numbers(self):
        prog = assemble(".data\nv: .word -3")
        _addr, blob = prog.segments[-1]
        assert int.from_bytes(blob, "little") == 0xFFFFFFFD


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate a0, a1")

    def test_unknown_register(self):
        with pytest.raises(AsmError, match="register"):
            assemble("addi q0, zero, 1")

    def test_undefined_symbol(self):
        with pytest.raises(AsmError, match="undefined symbol"):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("x: nop\nx: nop")

    def test_immediate_out_of_range(self):
        with pytest.raises(AsmError):
            assemble("addi a0, a0, 5000")

    def test_branch_out_of_range(self):
        source = "beq a0, a1, far\n" + "nop\n" * 2000 + "far: nop"
        with pytest.raises(AsmError):
            assemble(source)

    def test_error_reports_line_number(self):
        try:
            assemble("nop\nbadinsn a0")
        except AsmError as exc:
            assert exc.line_no == 2
        else:
            pytest.fail("expected AsmError")

    def test_module_gated_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("mul a0, a1, a2", isa=RV32I)

    def test_bad_directive(self):
        with pytest.raises(AsmError, match="unknown directive"):
            assemble(".frobnicate 3")

    def test_misaligned_align(self):
        with pytest.raises(AsmError, match="power of two"):
            assemble(".data\n.balign 3\n.word 1")


class TestMemoryOperandForms:
    def test_load_paren_form(self):
        insn = words_of(assemble("lw a0, 8(sp)"))[0]
        assert (insn.rd, insn.imm, insn.rs1) == (10, 8, 2)

    def test_load_zero_offset_implied(self):
        insn = words_of(assemble("lw a0, (sp)"))[0]
        assert insn.imm == 0

    def test_store_form(self):
        insn = words_of(assemble("sw a1, -12(s0)"))[0]
        assert (insn.rs2, insn.imm, insn.rs1) == (11, -12, 8)

    def test_compressed_sp_form_both_syntaxes(self):
        a = words_of(assemble("c.lwsp a0, 8(sp)"))[0]
        b = words_of(assemble("c.lwsp a0, 8"))[0]
        assert a.word == b.word

    def test_symbolic_offset(self):
        prog = assemble(".equ OFF, 16\nlw a0, OFF(sp)")
        assert words_of(prog)[0].imm == 16
