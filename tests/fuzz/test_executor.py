"""Program building, evaluation, and triage-classification tests."""

import json

from repro.fuzz import (
    OUTCOME_EXIT,
    OUTCOME_HANG,
    OUTCOME_TRAP,
    ProgramBuilder,
    ProgramEvaluator,
    TriageReport,
    words_from_program,
)
from repro.isa import Decoder, RV32IMC_ZICSR, encode
from repro.testgen import TortureConfig, TortureGenerator
from repro.vp import Machine, MachineConfig


def w(name, *ops):
    return encode(Decoder(RV32IMC_ZICSR), name, *ops)


class TestProgramBuilder:
    def test_built_program_runs_and_exits(self):
        builder = ProgramBuilder(RV32IMC_ZICSR)
        program = builder.build((w("addi", 5, 0, 7),))
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        result = machine.run(max_instructions=1000)
        assert result.stop_reason == "exit"
        assert result.exit_code == 0

    def test_encode_words_mixed_widths(self):
        wide = w("add", 6, 5, 5)          # 32-bit
        narrow = w("c.addi", 9, 1)        # 16-bit
        blob = ProgramBuilder.encode_words((wide, narrow))
        assert len(blob) == 6

    def test_empty_body_is_just_prologue_epilogue(self):
        builder = ProgramBuilder(RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(builder.build(()))
        result = machine.run(max_instructions=100)
        assert result.stop_reason == "exit"


class TestWordsFromProgram:
    def test_torture_program_round_trips(self):
        generator = TortureGenerator(RV32IMC_ZICSR,
                                     TortureConfig(length=50, seed=0))
        program = generator.generate(0)
        words = words_from_program(program, RV32IMC_ZICSR)
        assert len(words) > 20
        decoder = Decoder(RV32IMC_ZICSR)
        assert all(decoder.try_decode(word) is not None for word in words)


class TestEvaluator:
    def test_benign_input_classified_exit(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        result = evaluator.evaluate((w("addi", 5, 0, 1),))
        assert result.outcome == OUTCOME_EXIT
        assert result.signature
        assert ("insn", "addi") in result.signature

    def test_bad_load_classified_trap(self):
        # lw from address 0 (x0 base) — unmapped, must trap.
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        result = evaluator.evaluate((w("lw", 5, 0, 0),))
        assert result.outcome == OUTCOME_TRAP
        assert result.trap_cause is not None

    def test_self_loop_classified_hang(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR, max_instructions=500)
        result = evaluator.evaluate((w("jal", 0, 0),))
        assert result.outcome == OUTCOME_HANG

    def test_no_state_leak_between_evaluations(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        probe = (w("add", 5, 6, 7),)
        baseline = evaluator.evaluate(probe)
        # A run that scribbles registers and scratch memory in between
        # (x8 holds the scratch-arena base from the builder prologue)...
        evaluator.evaluate((w("addi", 5, 0, 99),
                            w("sw", 5, 0, 8),
                            w("addi", 28, 0, 55)))
        again = evaluator.evaluate(probe)
        # ...must not change what the probe observes.
        assert again == baseline

    def test_signature_includes_edges_for_loops(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        loop = (w("addi", 5, 0, 4),
                w("addi", 5, 5, -1),
                w("bne", 5, 0, -4))
        result = evaluator.evaluate(loop)
        assert any(tag == "edge" for tag, _ in result.signature)


class TestTriageReport:
    def test_dedup_by_class_with_counts(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        triage = TriageReport()
        trap = evaluator.evaluate((w("lw", 5, 0, 0),))
        assert triage.record((1,), trap, found_at=0) is True
        assert triage.record((2,), trap, found_at=5) is False
        assert len(triage) == 1
        finding = triage.ordered()[0]
        assert finding.count == 2
        assert finding.found_at == 0          # first witness wins
        assert finding.words == (1,)

    def test_to_dict_is_json_parsable(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        triage = TriageReport()
        triage.record((w("lw", 5, 0, 0),),
                      evaluator.evaluate((w("lw", 5, 0, 0),)), 0)
        triage.record_divergence((w("addi", 5, 0, 1),),
                                 "pc mismatch @12", 12, 3)
        blob = json.dumps(triage.to_dict())
        parsed = json.loads(blob)
        assert parsed["classes"] == 2
        assert parsed["counts"] == {"divergence": 1, "trap": 1}
        assert all(f["code_hex"] for f in parsed["findings"])

    def test_table_renders(self):
        triage = TriageReport()
        assert "no findings" in triage.table()
        triage.record_divergence((1,), "x5 mismatch", 7, 1)
        assert "divergence" in triage.table()

    def test_lockstep_oracle_agrees_on_benign_input(self):
        evaluator = ProgramEvaluator(RV32IMC_ZICSR)
        assert evaluator.check_divergence((w("addi", 5, 0, 1),)) is None
