"""ISA-aware mutator tests: validity, determinism, operator behaviour."""

import random

from repro.fuzz import IsaMutator, MAX_BODY_WORDS
from repro.isa import Decoder, RV32IMC_ZICSR, encode


def seed_words(decoder):
    return (
        encode(decoder, "addi", 5, 0, 1),
        encode(decoder, "add", 6, 5, 5),
        encode(decoder, "xor", 7, 6, 5),
        encode(decoder, "beq", 5, 6, 8),
        encode(decoder, "sub", 8, 7, 6),
    )


class TestValidity:
    def test_all_mutants_fully_decodable(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(0)
        words = seed_words(decoder)
        for _ in range(300):
            words = mutator.mutate(words, rng, donors=[seed_words(decoder)])
            assert words, "mutant must be non-empty"
            for word in words:
                assert decoder.try_decode(word) is not None, hex(word)

    def test_random_instruction_encodes_validly(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(1)
        produced = 0
        for _ in range(100):
            word = mutator.random_instruction(rng)
            if word is None:
                continue
            produced += 1
            assert decoder.try_decode(word) is not None
        assert produced > 90

    def test_never_generates_excluded_mnemonics(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(2)
        for _ in range(500):
            word = mutator.random_instruction(rng)
            if word is None:
                continue
            name = decoder.try_decode(word).spec.name
            assert name not in ("ecall", "ebreak", "c.ebreak", "wfi",
                                "mret")

    def test_length_cap_enforced(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR, max_body_words=16)
        rng = random.Random(3)
        words = seed_words(decoder)
        donor = seed_words(decoder) * 10
        for _ in range(200):
            words = mutator.mutate(words, rng, donors=[donor])
            assert len(words) <= 16


class TestDeterminism:
    def test_same_rng_seed_same_mutants(self):
        decoder = Decoder(RV32IMC_ZICSR)
        words = seed_words(decoder)
        donors = [seed_words(decoder)]

        def trajectory(seed):
            mutator = IsaMutator(RV32IMC_ZICSR)
            rng = random.Random(seed)
            current = words
            out = []
            for _ in range(50):
                current = mutator.mutate(current, rng, donors=donors)
                out.append(current)
            return out

        assert trajectory(7) == trajectory(7)
        assert trajectory(7) != trajectory(8)


class TestOperators:
    def test_mutation_changes_input_usually(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(4)
        words = seed_words(decoder)
        changed = sum(
            1 for _ in range(100)
            if mutator.mutate(words, rng, donors=[words]) != words)
        assert changed > 80

    def test_splice_draws_from_donor(self):
        decoder = Decoder(RV32IMC_ZICSR)
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(5)
        base = (encode(decoder, "addi", 5, 0, 1),)
        donor_word = encode(decoder, "mul", 10, 11, 12)
        seen_donor = False
        for _ in range(200):
            mutated = mutator.mutate(base, rng, donors=[(donor_word,) * 4])
            if donor_word in mutated:
                seen_donor = True
                break
        assert seen_donor

    def test_empty_input_recovers(self):
        mutator = IsaMutator(RV32IMC_ZICSR)
        rng = random.Random(6)
        decoder = Decoder(RV32IMC_ZICSR)
        word = encode(decoder, "addi", 5, 0, 1)
        # Repeated delete pressure on a single instruction must never
        # yield an empty mutant.
        for _ in range(100):
            assert mutator.mutate((word,), rng) != ()

    def test_default_cap_is_module_constant(self):
        assert IsaMutator(RV32IMC_ZICSR).max_body_words == MAX_BODY_WORDS
