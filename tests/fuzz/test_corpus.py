"""Corpus dedup and energy-schedule tests."""

import random

import pytest

from repro.fuzz import Corpus, CorpusEntry, FeedbackMap


def entry(words, elements, found_at=0, name=""):
    signature = frozenset(elements)
    return CorpusEntry(words=tuple(words), signature=signature,
                       new_elements=signature, instructions=len(words),
                       found_at=found_at, name=name)


class TestAdmission:
    def test_signature_dedup(self):
        corpus = Corpus(FeedbackMap())
        first = entry([1, 2], [("insn", "add")])
        dup = entry([3, 4, 5], [("insn", "add")])
        assert corpus.add(first)
        assert not corpus.add(dup)
        assert len(corpus) == 1
        assert corpus.donor_words() == [(1, 2)]

    def test_distinct_signatures_coexist(self):
        corpus = Corpus(FeedbackMap())
        assert corpus.add(entry([1], [("insn", "add")]))
        assert corpus.add(entry([2], [("insn", "sub")]))
        assert len(corpus) == 2
        assert corpus.signatures() == [frozenset({("insn", "add")}),
                                       frozenset({("insn", "sub")})]

    def test_admission_updates_frequency(self):
        feedback = FeedbackMap()
        corpus = Corpus(feedback)
        corpus.add(entry([1], [("insn", "add"), ("gpr", 5)]))
        assert feedback.corpus_freq[("insn", "add")] == 1
        assert feedback.corpus_freq[("gpr", 5)] == 1


class TestSchedule:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            Corpus(FeedbackMap()).schedule(random.Random(0))

    def test_schedule_returns_entries(self):
        corpus = Corpus(FeedbackMap())
        corpus.add(entry([1], [("insn", "add")]))
        corpus.add(entry([2], [("insn", "sub")]))
        rng = random.Random(0)
        picks = {corpus.schedule(rng).words for _ in range(50)}
        assert picks == {(1,), (2,)}

    def test_rare_coverage_scheduled_more(self):
        feedback = FeedbackMap()
        corpus = Corpus(feedback)
        shared = [("insn", "add"), ("gpr", 1)]
        # Ten entries share the same elements (plus a disambiguating
        # one each); one entry holds a rare element nothing else has.
        for i in range(10):
            corpus.add(entry([i], shared + [("gpr", 10 + i)]))
        corpus.add(entry([99], [("insn", "mulhsu"), ("edge", 7)]))
        rng = random.Random(1)
        picks = [corpus.schedule(rng).words for _ in range(600)]
        rare_picks = picks.count((99,))
        # Energy weights: shared entries 1.2 each, the rare entry 2.0 —
        # expected ~86 picks of 600 versus ~55 uniform.
        assert rare_picks > 70

    def test_schedule_deterministic(self):
        def picks(seed):
            corpus = Corpus(FeedbackMap())
            corpus.add(entry([1], [("insn", "add")]))
            corpus.add(entry([2], [("insn", "sub"), ("gpr", 3)]))
            rng = random.Random(seed)
            return [corpus.schedule(rng).words for _ in range(40)]

        assert picks(3) == picks(3)

    def test_length_penalty(self):
        feedback = FeedbackMap()
        corpus = Corpus(feedback)
        short = entry([1], [("insn", "add")])
        long_ = entry(list(range(200)), [("insn", "sub")])
        corpus.add(short)
        corpus.add(long_)
        assert corpus._energy(short) > corpus._energy(long_)
