"""The reproducibility guarantees behind the single ``--seed`` flag.

One master seed pins down every random draw in the toolchain:

* ``repro gen torture --seed N`` emits a **byte-identical** program;
* ``repro fuzz --seed N`` reproduces the exact corpus trajectory,
  sequentially and with any ``--jobs`` count;
* ``default_campaign_mutants(..., seed=N)`` draws the same fault list.
"""

import pytest

from repro.asm import assemble
from repro.faultsim import default_campaign_mutants
from repro.fuzz import FuzzConfig, FuzzEngine, trivial_seed
from repro.isa import RV32IMC_ZICSR
from repro.testgen import TortureConfig, TortureGenerator


class TestTortureByteIdentical:
    def test_same_seed_same_program_bytes(self):
        def image(seed):
            generator = TortureGenerator(RV32IMC_ZICSR,
                                         TortureConfig(length=150))
            program = generator.generate(seed)
            return [(base, bytes(blob)) for base, blob in program.segments]

        assert image(11) == image(11)
        assert image(11) != image(12)

    def test_cli_gen_torture_seeded(self, capsys):
        from repro.cli import main

        def emit(seed):
            assert main(["gen", "torture", "--seed", str(seed),
                         "--length", "60"]) == 0
            return capsys.readouterr().out

        assert emit(3) == emit(3)
        assert emit(3) != emit(4)


class TestCampaignMutantsSeeded:
    SOURCE = """
    _start:
        li t0, 20
        li a0, 0
    loop:
        add a0, a0, t0
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """

    def test_same_seed_same_fault_list(self):
        program = assemble(self.SOURCE, isa=RV32IMC_ZICSR)

        def faults(seed):
            return [repr(fault) for fault in default_campaign_mutants(
                program, isa=RV32IMC_ZICSR, mutants=30, seed=seed,
                golden_instructions=100)]

        assert faults(5) == faults(5)
        assert faults(5) != faults(6)


class TestFuzzTrajectory:
    def _run(self, jobs=1, seed=42, iterations=200):
        engine = FuzzEngine(RV32IMC_ZICSR, FuzzConfig(
            iterations=iterations, seed=seed, jobs=jobs,
            minimize_evals=6, max_instructions=1000))
        result = engine.run(trivial_seed(RV32IMC_ZICSR))
        return result, engine

    def test_fixed_seed_reproduces_trajectory_200_iterations(self):
        first, engine_a = self._run()
        second, engine_b = self._run()
        # Same corpus, same order, same inputs — the whole trajectory.
        assert first.signature_digests() == second.signature_digests()
        assert [e.words for e in engine_a.corpus] == \
            [e.words for e in engine_b.corpus]
        assert [e.found_at for e in engine_a.corpus] == \
            [e.found_at for e in engine_b.corpus]
        assert first.executions == second.executions
        assert first.triage.to_dict() == second.triage.to_dict()

    def test_different_seed_different_trajectory(self):
        first, _ = self._run(seed=1)
        second, _ = self._run(seed=2)
        assert first.signature_digests() != second.signature_digests()

    def test_parallel_identical_to_sequential(self):
        # Bit-identical results need no parallel hardware — a 2-worker
        # pool on a 1-CPU host exercises the same code path.
        sequential, seq_engine = self._run(jobs=1)
        parallel, par_engine = self._run(jobs=2)
        if parallel.jobs != 2:
            pytest.skip("worker pool unavailable on this host")
        assert sequential.signature_digests() == \
            parallel.signature_digests()
        assert [e.words for e in seq_engine.corpus] == \
            [e.words for e in par_engine.corpus]
        assert sequential.triage.to_dict() == parallel.triage.to_dict()
