"""Fuzzing-engine tests: coverage growth, triage, telemetry, config."""

import json

import pytest

from repro.fuzz import (
    FuzzConfig,
    FuzzEngine,
    suite_seeds,
    trivial_seed,
)
from repro.isa import RV32IMC_ZICSR
from repro.telemetry import Telemetry, telemetry_session


def quick_config(**overrides):
    base = dict(iterations=150, seed=0, minimize_evals=6,
                max_instructions=1000)
    base.update(overrides)
    return FuzzConfig(**base)


class TestCoverageGrowth:
    def test_trivial_seed_strictly_grows_coverage(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        seeds = trivial_seed(RV32IMC_ZICSR)
        result = engine.run(seeds)
        seed_elements = len(result.signatures[0])
        assert result.coverage_elements > seed_elements
        assert result.corpus_size > 1

    def test_coverage_elements_match_feedback(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        result = engine.run()
        assert result.coverage_elements == len(engine.feedback)
        union = set()
        for signature in result.signatures:
            union |= signature
        assert union == engine.feedback.seen

    def test_found_at_is_monotone(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        engine.run()
        found = [entry.found_at for entry in engine.corpus]
        assert found == sorted(found)


class TestSeeds:
    def test_suite_seeds_nonempty_and_named(self):
        seeds = suite_seeds(RV32IMC_ZICSR, seed=0, torture_programs=1)
        assert len(seeds) > 5
        names = [name for name, _ in seeds]
        assert any(name.startswith("torture") for name in names)
        assert all(words for _, words in seeds)

    def test_suite_seeds_deterministic(self):
        a = suite_seeds(RV32IMC_ZICSR, seed=5, torture_programs=1)
        b = suite_seeds(RV32IMC_ZICSR, seed=5, torture_programs=1)
        assert a == b

    def test_seed_corpus_deduplicated_by_signature(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config(iterations=0))
        seeds = trivial_seed(RV32IMC_ZICSR) * 3
        engine.run(seeds)
        assert len(engine.corpus) == 1

    def test_empty_seed_list_rejected(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        with pytest.raises(ValueError):
            engine.run([])


class TestMinimization:
    def test_corpus_entries_keep_their_signature(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        engine.run()
        for entry in list(engine.corpus)[:10]:
            check = engine.evaluator.evaluate(entry.words)
            assert check.signature == entry.signature

    def test_minimization_can_be_disabled(self):
        on = FuzzEngine(RV32IMC_ZICSR, quick_config(minimize=True))
        off = FuzzEngine(RV32IMC_ZICSR, quick_config(minimize=False))
        r_on = on.run()
        r_off = off.run()
        # Minimization costs extra trim executions but buys shorter
        # corpus inputs.  (Stored inputs feed later mutations, so the
        # two configurations legitimately take different trajectories —
        # reproducibility holds per configuration, tested elsewhere.)
        assert r_on.executions > r_on.iterations
        mean_on = sum(len(e.words) for e in on.corpus) / len(on.corpus)
        mean_off = sum(len(e.words) for e in off.corpus) / len(off.corpus)
        assert mean_on <= mean_off


class TestResult:
    def test_to_dict_json_round_trip(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
        result = engine.run()
        parsed = json.loads(json.dumps(result.to_dict()))
        assert parsed["iterations"] == 150
        assert parsed["corpus_size"] == result.corpus_size
        assert len(parsed["corpus_signatures"]) == result.corpus_size
        assert parsed["triage"]["classes"] == len(result.triage)

    def test_summary_mentions_key_figures(self):
        result = FuzzEngine(RV32IMC_ZICSR, quick_config()).run()
        text = result.summary()
        assert "corpus" in text and "coverage" in text
        assert "findings" in text

    def test_time_budget_stops_early(self):
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config(
            iterations=10_000_000, time_budget=0.2))
        result = engine.run()
        assert result.iterations < 10_000_000


class TestTelemetry:
    def test_fuzz_events_and_metrics_emitted(self):
        with telemetry_session(Telemetry()) as session:
            engine = FuzzEngine(RV32IMC_ZICSR, quick_config())
            engine.run()
            types = {event["type"] for event in session.events.events}
            assert "fuzz.started" in types
            assert "fuzz.coverage" in types
            assert "fuzz.finished" in types
            metrics = session.metrics.to_dict()
            assert metrics["fuzz.execs"]["value"] > 0
            assert metrics["fuzz.corpus_size"]["value"] > 0


class TestLockstep:
    def test_lockstep_oracle_runs_clean(self):
        # The block cache must not change architectural behaviour, so a
        # lockstep-checked session reports no divergence findings.
        engine = FuzzEngine(RV32IMC_ZICSR, quick_config(
            iterations=60, lockstep=True))
        engine.run()
        assert engine.triage.counts().get("divergence", 0) == 0
