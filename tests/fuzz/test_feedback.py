"""Feedback map, TB-edge bitmap, and coverage-signature tests."""

import pytest

from repro.asm import assemble
from repro.coverage import coverage_signature, measure_coverage
from repro.fuzz import EDGE_MAP_SIZE, FeedbackMap, TBEdgePlugin, edge_id
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig

EXIT = "\n    li a7, 93\n    ecall\n"


class TestEdgeId:
    def test_range(self):
        for src, dst in [(0x8000_0000, 0x8000_0010),
                         (0x8000_0010, 0x8000_0000),
                         (0, 0), (0xFFFF_FFFE, 0x2)]:
            assert 0 <= edge_id(src, dst) < EDGE_MAP_SIZE

    def test_direction_sensitive(self):
        a, b = 0x8000_0000, 0x8000_0040
        assert edge_id(a, b) != edge_id(b, a)

    def test_deterministic(self):
        assert edge_id(0x8000_0100, 0x8000_0200) == \
            edge_id(0x8000_0100, 0x8000_0200)


class TestTBEdgePlugin:
    def _run(self, source):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        plugin = machine.add_plugin(TBEdgePlugin())
        machine.load(assemble(source, isa=RV32IMC_ZICSR))
        machine.run(max_instructions=10_000)
        return plugin

    def test_straightline_program_has_few_edges(self):
        plugin = self._run("_start: nop" + EXIT)
        assert len(plugin.edges) <= 1

    def test_loop_adds_back_edge(self):
        loop = """
        _start:
            li t0, 5
        again:
            addi t0, t0, -1
            bnez t0, again
        """ + EXIT
        straight = self._run("_start: nop" + EXIT)
        looped = self._run(loop)
        assert len(looped.edges) > len(straight.edges)

    def test_reset_clears(self):
        plugin = self._run("_start:\n    li t0, 2\nl:\n    addi t0, t0, -1\n"
                           "    bnez t0, l" + EXIT)
        assert plugin.edges
        plugin.reset()
        assert not plugin.edges


class TestCoverageSignature:
    def _report(self, source):
        program = assemble(source, isa=RV32IMC_ZICSR)
        return measure_coverage(program, isa=RV32IMC_ZICSR)

    def test_tags_present(self):
        signature = coverage_signature(self._report("_start: add a0, a1, a2"
                                                    + EXIT))
        tags = {tag for tag, _ in signature}
        assert "insn" in tags and "gpr" in tags

    def test_hashable_and_stable(self):
        a = coverage_signature(self._report("_start: nop" + EXIT))
        b = coverage_signature(self._report("_start: nop" + EXIT))
        assert a == b
        assert hash(a) == hash(b)

    def test_edges_included(self):
        report = self._report("_start: nop" + EXIT)
        plain = coverage_signature(report)
        with_edges = coverage_signature(report, tb_edges=(17, 99))
        assert ("edge", 17) in with_edges
        assert with_edges > plain

    def test_monotone_in_behaviour(self):
        small = coverage_signature(self._report("_start: nop" + EXIT))
        big = coverage_signature(
            self._report("_start: add a0, a1, a2\n    mul a3, a4, a5"
                         + EXIT))
        assert len(big) > len(small)


class TestFeedbackMap:
    def test_observe_reports_new_elements_once(self):
        feedback = FeedbackMap()
        sig = frozenset({("insn", "add"), ("gpr", 5)})
        first = feedback.observe(sig)
        assert first == sig
        assert feedback.observe(sig) == frozenset()
        assert len(feedback) == 2

    def test_version_bumps_only_on_news(self):
        feedback = FeedbackMap()
        sig = frozenset({("insn", "add")})
        v0 = feedback.version
        feedback.observe(sig)
        v1 = feedback.version
        feedback.observe(sig)
        assert v1 > v0
        assert feedback.version == v1

    def test_rarity_favors_rare_elements(self):
        feedback = FeedbackMap()
        common = frozenset({("insn", "add")})
        rare = frozenset({("insn", "mulhsu")})
        feedback.observe(common | rare)
        for _ in range(10):
            feedback.count_corpus_entry(common)
        feedback.count_corpus_entry(rare)
        assert feedback.rarity(rare) > feedback.rarity(common)

    def test_counts_by_tag(self):
        feedback = FeedbackMap()
        feedback.observe(frozenset({("insn", "add"), ("insn", "sub"),
                                    ("gpr", 1), ("edge", 7)}))
        counts = feedback.counts_by_tag()
        assert counts == {"edge": 1, "gpr": 1, "insn": 2}

    def test_rarity_deterministic_across_orderings(self):
        feedback = FeedbackMap()
        sig = frozenset({("insn", n) for n in ("add", "sub", "xor", "or")})
        feedback.observe(sig)
        feedback.count_corpus_entry(sig)
        assert feedback.rarity(sig) == pytest.approx(feedback.rarity(sig))
