"""Job model: spec validation, lifecycle transitions, context checks."""

import pytest

from repro.serve import (
    Job,
    JobCancelled,
    JobContext,
    JobSpec,
    JobTimeout,
    STATE_CANCELLED,
    STATE_FAILED,
    STATE_PENDING,
    STATE_RUNNING,
    STATE_SUCCEEDED,
)


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(kind="vp_run")
        spec.validate()
        assert spec.priority == 0 and spec.max_retries == 0
        assert spec.deadline_seconds is None

    def test_round_trip(self):
        spec = JobSpec(kind="wcet", payload={"source": "x"}, priority=3,
                       deadline_seconds=5.0, timeout_seconds=2.0,
                       max_retries=1)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("bad", [
        {"kind": ""},
        {"kind": "x", "payload": []},
        {"kind": "x", "max_retries": -1},
        {"kind": "x", "deadline_seconds": 0},
        {"kind": "x", "timeout_seconds": -1.0},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            JobSpec.from_dict(bad)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            JobSpec.from_dict({"kind": "x", "nonsense": 1})


class TestJobLifecycle:
    def test_happy_path(self):
        job = Job(JobSpec(kind="vp_run"))
        assert job.state == STATE_PENDING and not job.done
        assert job.mark_running("worker-0")
        assert job.state == STATE_RUNNING and job.attempts == 1
        assert job.mark_succeeded({"x": 1})
        assert job.done and job.result == {"x": 1}
        assert job.wait(0.1)

    def test_final_states_are_sticky(self):
        job = Job(JobSpec(kind="vp_run"))
        job.mark_running("w")
        job.mark_failed("boom")
        assert not job.mark_succeeded({})
        assert job.state == STATE_FAILED and job.error == "boom"

    def test_cancel_pending_resolves_immediately(self):
        job = Job(JobSpec(kind="vp_run"))
        assert job.cancel()
        assert job.state == STATE_CANCELLED and job.done

    def test_cancel_running_is_cooperative(self):
        job = Job(JobSpec(kind="vp_run"))
        job.mark_running("w")
        assert job.cancel()
        assert job.state == STATE_RUNNING  # resolves at next checkpoint
        with pytest.raises(JobCancelled):
            JobContext(job).check()

    def test_retry_budget(self):
        job = Job(JobSpec(kind="vp_run", max_retries=1))
        job.mark_running("w")
        assert job.mark_retrying("attempt 1")   # back to pending
        assert job.state == STATE_PENDING
        job.mark_running("w")
        assert job.attempts == 2
        assert not job.mark_retrying("attempt 2")  # budget exhausted

    def test_finalize_once(self):
        job = Job(JobSpec(kind="vp_run"))
        job.mark_running("w")
        job.mark_succeeded({})
        assert job.finalize_once()
        assert not job.finalize_once()

    def test_deadline_expiry(self):
        clock = [100.0]
        job = Job(JobSpec(kind="vp_run", deadline_seconds=5.0),
                  clock=lambda: clock[0])
        assert not job.deadline_expired()
        clock[0] = 105.0
        assert job.deadline_expired()

    def test_status_view(self):
        job = Job(JobSpec(kind="coverage", priority=2))
        view = job.to_dict()
        assert view["kind"] == "coverage" and view["state"] == "pending"
        assert "result" not in view
        job.mark_running("w")
        job.mark_succeeded({"v": 1})
        assert job.to_dict(with_result=True)["result"] == {"v": 1}
        assert job.to_dict()["run_seconds"] >= 0


class TestJobContext:
    def test_timeout_raises(self):
        clock = [0.0]
        job = Job(JobSpec(kind="vp_run", timeout_seconds=1.0),
                  clock=lambda: clock[0])
        ctx = JobContext(job, clock=lambda: clock[0])
        ctx.check()  # fine
        clock[0] = 2.0
        with pytest.raises(JobTimeout):
            ctx.check()

    def test_no_timeout_never_raises(self):
        job = Job(JobSpec(kind="vp_run"))
        JobContext(job).check()
