"""Observability surface of serve: /metrics, /v1/events tailing,
/v1/fuzz/frontier, and end-to-end trace propagation through a job."""

import json

import pytest

from repro.observe import TraceContext
from repro.serve import BatchService
from repro.serve.api import ServiceServer
from repro.serve.client import ServiceClient
from repro.serve.jobs import JobSpec
from repro.telemetry import parse_prometheus, to_chrome_trace

EXIT_OK = """
_start:
    li a0, 5
    li a7, 93
    ecall
"""

FAULTY_LOOP = """
_start:
    li t0, 0
    li t1, 3
loop:
    addi t0, t0, 1
    bne t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def server():
    service = BatchService(workers=2, queue_limit=8)
    service.start()
    srv = ServiceServer(service, port=0)
    srv.start()
    yield srv
    srv.close()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=10)


class TestJobSpecTraceRoundTrip:
    def test_to_json_from_json_preserves_trace(self):
        ctx = TraceContext.mint().child()
        spec = JobSpec(kind="vp_run", payload={"source": EXIT_OK},
                       trace=ctx.to_dict())
        again = JobSpec.from_json(spec.to_json())
        assert again.trace == ctx.to_dict()
        assert TraceContext.from_dict(again.trace) == ctx
        assert again.kind == spec.kind
        assert again.payload == spec.payload

    def test_trace_omitted_when_absent(self):
        spec = JobSpec(kind="vp_run", payload={"source": EXIT_OK})
        assert "trace" not in json.loads(spec.to_json())
        assert JobSpec.from_json(spec.to_json()).trace is None

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            JobSpec.from_json("[1, 2]")

    def test_invalid_trace_rejected_at_validation(self):
        spec = JobSpec(kind="vp_run", payload={"source": EXIT_OK},
                       trace={"bogus": "x"})
        with pytest.raises(ValueError):
            spec.validate()


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_jobs(self, client):
        job = client.submit("vp_run", {"source": EXIT_OK})
        client.wait(job["id"], timeout=30)
        text = client.metrics_text()
        parsed = parse_prometheus(text)  # raises on malformed exposition
        assert parsed["repro_serve_submitted_total"][()] >= 1
        assert "repro_serve_queue_depth_live" in parsed
        assert "repro_events_dropped" in parsed
        buckets = parsed["repro_serve_job_seconds_bucket"]
        assert any(dict(labels).get("le") == "+Inf" for labels in buckets)

    def test_scrape_does_not_pollute_event_log(self, client, server):
        before = server.service.telemetry.events.stats()["total_appended"]
        client.metrics_text()
        client.metrics_text()
        after = server.service.telemetry.events.stats()["total_appended"]
        assert after == before


class TestEventsEndpoint:
    def test_tailing_is_monotonic_and_complete(self, client):
        first = client.events(since=0)
        cursor = first["next"]
        job = client.submit("vp_run", {"source": EXIT_OK})
        client.wait(job["id"], timeout=30)
        batch = client.events(since=cursor)
        types = [e["type"] for e in batch["events"]]
        assert "job.submitted" in types
        assert batch["next"] >= cursor + len(batch["events"])
        assert batch["missed"] == 0
        # Draining again from the new cursor yields nothing old.
        assert all(t != "job.submitted"
                   for t in (e["type"] for e in
                             client.events(since=batch["next"])["events"]))

    def test_bad_cursor_is_a_client_error(self, client):
        from repro.serve.client import ServiceError
        with pytest.raises(ServiceError) as excinfo:
            client.events(since=-1)
        assert excinfo.value.status == 400


class TestFrontierEndpoint:
    def test_empty_frontier(self, client):
        frontier = client.frontier()
        assert frontier == {"sessions": [], "active": 0}

    def test_fuzz_job_populates_frontier(self, client):
        job = client.submit("fuzz", {
            "source": FAULTY_LOOP, "iterations": 30, "seed": 7,
            "jobs": 1,
        }, trace=TraceContext.mint().to_dict())
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "succeeded"
        frontier = client.frontier()
        assert frontier["sessions"]
        session = frontier["sessions"][0]
        assert session["finished"]
        assert session["latest"]["coverage_elements"] >= 1


class TestTracedJobs:
    def test_traced_job_events_cover_queue_and_run(self, client):
        root = TraceContext.mint()
        job = client.submit("vp_run", {"source": EXIT_OK},
                            trace=root.to_dict())
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == "succeeded"
        view = client.job_events(job["id"])
        assert view["traced"]
        events = view["events"]
        types = {e["type"] for e in events}
        assert {"job.queue_wait", "job", "run.started",
                "run.finished"} <= types
        # Every span belongs to the submitted trace.
        trace_ids = {e["trace_id"] for e in events if "trace_id" in e}
        assert trace_ids == {root.trace_id}
        # The job slice is a child chain hanging off the minted root.
        job_span = next(e for e in events if e["type"] == "job")
        assert job_span["parent_id"] == root.span_id
        # Timestamps are sorted and queue wait precedes execution.
        ts = [e["ts_us"] for e in events]
        assert ts == sorted(ts)
        queue = next(e for e in events if e["type"] == "job.queue_wait")
        assert queue["ts_us"] <= job_span["ts_us"]

    def test_trace_exports_to_chrome_format(self, client):
        job = client.submit("fault_campaign", {
            "source": FAULTY_LOOP, "mutants": 5, "seed": 3,
        }, trace=TraceContext.mint().to_dict())
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "succeeded"
        events = client.job_events(job["id"])["events"]
        trace = to_chrome_trace(events)
        names = {e["name"] for e in trace if e["ph"] != "M"}
        assert {"job.queue_wait", "job", "campaign.started",
                "campaign.finished"} <= names
        # Worker events were merged from the pool: classification spans
        # from the campaign itself are present alongside service spans.
        assert any(n == "mutant.classified" for n in names)

    def test_untraced_job_has_no_trace_view(self, client):
        job = client.submit("vp_run", {"source": EXIT_OK})
        client.wait(job["id"], timeout=30)
        view = client.job_events(job["id"])
        assert not view["traced"]
        assert view["events"] == []
