"""Service-vs-direct parity: a job through the service must produce
byte-identical results to the direct library call."""

import json

import pytest

from repro.asm import assemble
from repro.faultsim import FaultCampaign, default_campaign_mutants
from repro.isa import RV32IMC_ZICSR
from repro.serve import BatchService, JobSpec
from repro.serve.executors import execute_job
from repro.testgen import StructuredGenerator

MUTANTS = 40
SEED = 11


@pytest.fixture(scope="module")
def workload():
    generated = StructuredGenerator(statements=5).generate(33)
    return generated.source


def direct_campaign_json(source: str) -> str:
    """The reference: a plain FaultCampaign.run over the default mix."""
    program = assemble(source, isa=RV32IMC_ZICSR)
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    faults = default_campaign_mutants(
        program, isa=RV32IMC_ZICSR, mutants=MUTANTS, seed=SEED,
        golden_instructions=golden.instructions)
    result = campaign.run(faults)
    data = result.to_dict()
    data.pop("elapsed_seconds")  # wall-clock, never comparable
    return json.dumps(data, sort_keys=True)


def service_campaign_dict(source: str, **service_kwargs) -> dict:
    service = BatchService(**{"workers": 2, "queue_limit": 8,
                              **service_kwargs}).start()
    try:
        job = service.submit(JobSpec(
            kind="fault_campaign",
            payload={"source": source, "mutants": MUTANTS, "seed": SEED}))
        assert job.wait(120), f"job stuck in {job.state}"
        assert job.state == "succeeded", job.error
        return job.result
    finally:
        service.shutdown()


class TestCampaignParity:
    def test_service_result_byte_identical_to_direct(self, workload):
        expected = direct_campaign_json(workload)
        result = service_campaign_dict(workload)
        campaign = dict(result["campaign"])
        campaign.pop("elapsed_seconds")
        assert json.dumps(campaign, sort_keys=True) == expected

    def test_service_result_survives_json_round_trip(self, workload):
        from repro.faultsim import CampaignResult

        result = service_campaign_dict(workload)
        restored = CampaignResult.from_json(json.dumps(result["campaign"]))
        assert restored.total == MUTANTS
        assert restored.counts == result["counts"]

    def test_process_pool_matches_thread_pool(self, workload):
        expected = direct_campaign_json(workload)
        result = service_campaign_dict(workload, workers=2, mode="process")
        campaign = dict(result["campaign"])
        campaign.pop("elapsed_seconds")
        assert json.dumps(campaign, sort_keys=True) == expected


class TestVpRunParity:
    def test_vp_run_matches_direct_machine(self):
        from repro.vp import Machine, MachineConfig

        source = """
        _start:
            li t0, 0x10000000
            li t1, 72
            sw t1, 0(t0)
            li a0, 9
            li a7, 93
            ecall
        """
        program = assemble(source, isa=RV32IMC_ZICSR)
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        direct = machine.run(max_instructions=1000)

        result = execute_job("vp_run", {"source": source})
        assert result["exit_code"] == direct.exit_code
        assert result["instructions"] == direct.instructions
        assert result["cycles"] == direct.cycles
        assert result["uart_output"] == machine.uart.output


class TestFuzzJobParity:
    PAYLOAD = {"iterations": 120, "seed": 9, "seeds": "trivial",
               "max_instructions": 1000}

    def _strip_clock(self, data: dict) -> str:
        data = dict(data)
        data.pop("elapsed_seconds")
        data.pop("execs_per_second")
        return json.dumps(data, sort_keys=True)

    def test_fuzz_job_matches_direct_engine(self):
        from repro.fuzz import FuzzConfig, FuzzEngine, trivial_seed

        engine = FuzzEngine(RV32IMC_ZICSR, FuzzConfig(
            iterations=120, seed=9, max_instructions=1000))
        direct = engine.run(trivial_seed(RV32IMC_ZICSR))
        job = execute_job("fuzz", dict(self.PAYLOAD))
        assert self._strip_clock(job) == self._strip_clock(direct.to_dict())

    def test_fuzz_job_through_service(self):
        service = BatchService(workers=2, queue_limit=8).start()
        try:
            job = service.submit(JobSpec(kind="fuzz",
                                         payload=dict(self.PAYLOAD)))
            assert job.wait(120), f"job stuck in {job.state}"
            assert job.state == "succeeded", job.error
            result = job.result
        finally:
            service.shutdown()
        assert result["corpus_size"] > 1
        assert result["coverage_elements"] > 0
        assert self._strip_clock(result) == \
            self._strip_clock(execute_job("fuzz", dict(self.PAYLOAD)))

    def test_bad_seeds_kind_rejected(self):
        from repro.serve.executors import ExecutorError

        with pytest.raises(ExecutorError, match="seeds"):
            execute_job("fuzz", {"seeds": "nonsense", "iterations": 1})
