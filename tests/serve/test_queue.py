"""Admission queue: ordering, backpressure, close semantics."""

import pytest

from repro.serve import AdmissionQueue, Job, JobSpec, QueueClosed, QueueFull


def job(priority=0, deadline=None, kind="vp_run"):
    return Job(JobSpec(kind=kind, priority=priority,
                       deadline_seconds=deadline))


class TestOrdering:
    def test_priority_order(self):
        q = AdmissionQueue(limit=8)
        low, high, mid = job(0), job(9), job(5)
        for item in (low, high, mid):
            q.put(item)
        assert [q.get(0.1) for _ in range(3)] == [high, mid, low]

    def test_fifo_within_priority(self):
        q = AdmissionQueue(limit=8)
        jobs = [job(priority=1) for _ in range(4)]
        for item in jobs:
            q.put(item)
        assert [q.get(0.1) for _ in range(4)] == jobs

    def test_earliest_deadline_first_within_priority(self):
        q = AdmissionQueue(limit=8)
        relaxed, urgent, none = job(deadline=60), job(deadline=1), job()
        for item in (relaxed, none, urgent):
            q.put(item)
        assert [q.get(0.1) for _ in range(3)] == [urgent, relaxed, none]

    def test_priority_beats_deadline(self):
        q = AdmissionQueue(limit=8)
        urgent_low = job(priority=0, deadline=1)
        relaxed_high = job(priority=5, deadline=600)
        q.put(urgent_low)
        q.put(relaxed_high)
        assert q.get(0.1) is relaxed_high


class TestBackpressure:
    def test_full_queue_rejects(self):
        q = AdmissionQueue(limit=2)
        q.put(job())
        q.put(job())
        with pytest.raises(QueueFull):
            q.put(job())

    def test_rejection_frees_nothing(self):
        q = AdmissionQueue(limit=1)
        first = job()
        q.put(first)
        with pytest.raises(QueueFull):
            q.put(job())
        assert q.get(0.1) is first

    def test_depth_ignores_resolved_jobs(self):
        q = AdmissionQueue(limit=4)
        cancelled = job()
        q.put(cancelled)
        q.put(job())
        cancelled.cancel()
        assert q.depth() == 1

    def test_get_skips_resolved_jobs(self):
        q = AdmissionQueue(limit=4)
        cancelled, live = job(), job()
        q.put(cancelled)
        q.put(live)
        cancelled.cancel()
        assert q.get(0.1) is live
        assert q.get(0.05) is None

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(limit=0)


class TestClose:
    def test_put_after_close_raises(self):
        q = AdmissionQueue(limit=2)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(job())

    def test_close_still_hands_out_backlog(self):
        q = AdmissionQueue(limit=2)
        queued = job()
        q.put(queued)
        q.close()
        assert q.get(0.1) is queued
        assert q.get(0.1) is None  # drained + closed

    def test_get_timeout_returns_none(self):
        q = AdmissionQueue(limit=2)
        assert q.get(timeout=0.05) is None

    def test_drain_empties_queue(self):
        q = AdmissionQueue(limit=4)
        jobs = [job() for _ in range(3)]
        for item in jobs:
            q.put(item)
        assert set(q.drain()) == set(jobs)
        assert q.depth() == 0
