"""Scheduler + worker pool: concurrency, backpressure, retries, shutdown."""

import threading
import time

import pytest

from repro.serve import (
    BatchService,
    ExecutorError,
    JobSpec,
    QueueFull,
    ServiceClosed,
    register_executor,
    resolve_workers,
)
from repro.serve.executors import _EXECUTORS

EXIT_OK = """
_start:
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def scratch_kinds():
    """Register throwaway executors; unregister them afterwards."""
    added = []

    def add(kind, fn):
        register_executor(kind)(fn)
        added.append(kind)

    yield add
    for kind in added:
        _EXECUTORS.pop(kind, None)


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_limit", 16)
    return BatchService(**kwargs).start()


class TestResolveWorkers:
    def test_zero_and_none_autodetect(self):
        import os
        expected = os.cpu_count() or 1
        assert resolve_workers(0) == expected
        assert resolve_workers(None) == expected

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestExecution:
    def test_vp_run_job(self):
        service = make_service()
        try:
            job = service.submit(JobSpec(kind="vp_run",
                                         payload={"source": EXIT_OK}))
            assert job.wait(30)
            assert job.state == "succeeded"
            assert job.result["stop_reason"] == "exit"
            assert job.result["exit_code"] == 0
        finally:
            service.shutdown()

    def test_unknown_kind_rejected_at_submit(self):
        service = make_service()
        try:
            with pytest.raises(ExecutorError):
                service.submit(JobSpec(kind="no_such_kind"))
        finally:
            service.shutdown()

    def test_bad_payload_fails_without_retry(self, scratch_kinds):
        service = make_service()
        try:
            job = service.submit(JobSpec(
                kind="vp_run", payload={"source": ""}, max_retries=3))
            assert job.wait(30)
            assert job.state == "failed"
            assert job.attempts == 1  # ExecutorError is not retried
        finally:
            service.shutdown()

    def test_retry_then_succeed(self, scratch_kinds):
        calls = []

        def flaky(payload, ctx):
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient flake")
            return {"ok": True}

        scratch_kinds("test.flaky", flaky)
        service = make_service(workers=1)
        try:
            job = service.submit(JobSpec(kind="test.flaky", max_retries=2))
            assert job.wait(30)
            assert job.state == "succeeded" and job.attempts == 3
        finally:
            service.shutdown()

    def test_retries_exhausted_fails(self, scratch_kinds):
        def always_broken(payload, ctx):
            raise RuntimeError("permanent")

        scratch_kinds("test.broken", always_broken)
        service = make_service(workers=1)
        try:
            job = service.submit(JobSpec(kind="test.broken", max_retries=1))
            assert job.wait(30)
            assert job.state == "failed" and job.attempts == 2
            assert "permanent" in job.error
        finally:
            service.shutdown()

    def test_run_timeout(self, scratch_kinds):
        def slow(payload, ctx):
            for _ in range(100):
                time.sleep(0.02)
                ctx.check()
            return {}

        scratch_kinds("test.slow", slow)
        service = make_service(workers=1)
        try:
            job = service.submit(JobSpec(kind="test.slow",
                                         timeout_seconds=0.1))
            assert job.wait(30)
            assert job.state == "timeout"
        finally:
            service.shutdown()


class TestSchedulingPolicy:
    def test_priority_dispatch_order(self, scratch_kinds):
        order = []
        gate = threading.Event()

        def recorder(payload, ctx):
            if payload.get("gate"):
                gate.wait(10)
            else:
                order.append(payload["tag"])
            return {}

        scratch_kinds("test.rec", recorder)
        service = make_service(workers=1, queue_limit=16)
        try:
            # Occupy the single worker so the rest queue up.
            blocker = service.submit(JobSpec(kind="test.rec",
                                             payload={"gate": True}))
            service.submit(JobSpec(kind="test.rec",
                                   payload={"tag": "low"}, priority=0))
            service.submit(JobSpec(kind="test.rec",
                                   payload={"tag": "high"}, priority=9))
            gate.set()
            assert service.join(timeout=30)
            assert order == ["high", "low"]
            assert blocker.state == "succeeded"
        finally:
            service.shutdown()

    def test_deadline_expires_in_queue(self, scratch_kinds):
        gate = threading.Event()
        started = threading.Event()

        def blocker(payload, ctx):
            started.set()
            gate.wait(10)
            return {}

        scratch_kinds("test.gate", blocker)
        service = make_service(workers=1)
        try:
            service.submit(JobSpec(kind="test.gate"))
            assert started.wait(10)  # worker busy before the doomed job
            doomed = service.submit(JobSpec(kind="test.gate",
                                            deadline_seconds=0.05))
            time.sleep(0.2)
            gate.set()
            assert doomed.wait(30)
            assert doomed.state == "timeout"
            assert "deadline" in doomed.error
        finally:
            service.shutdown()

    def test_cancel_queued_job_never_runs(self, scratch_kinds):
        gate = threading.Event()
        ran = []

        def tracked(payload, ctx):
            if payload.get("gate"):
                gate.wait(10)
            else:
                ran.append(payload["tag"])
            return {}

        scratch_kinds("test.track", tracked)
        service = make_service(workers=1)
        try:
            service.submit(JobSpec(kind="test.track",
                                   payload={"gate": True}))
            victim = service.submit(JobSpec(kind="test.track",
                                            payload={"tag": "victim"}))
            assert service.cancel(victim.id)
            gate.set()
            assert service.join(timeout=30)
            assert victim.state == "cancelled"
            assert ran == []
        finally:
            service.shutdown()

    def test_cancel_running_job_cooperatively(self, scratch_kinds):
        started = threading.Event()

        def cancellable(payload, ctx):
            started.set()
            for _ in range(500):
                time.sleep(0.01)
                ctx.check()
            return {}

        scratch_kinds("test.cancellable", cancellable)
        service = make_service(workers=1)
        try:
            job = service.submit(JobSpec(kind="test.cancellable"))
            assert started.wait(10)
            service.cancel(job.id)
            assert job.wait(30)
            assert job.state == "cancelled"
        finally:
            service.shutdown()


class TestConcurrencyAndBackpressure:
    def test_sustains_eight_concurrent_jobs(self, scratch_kinds):
        barrier = threading.Barrier(8, timeout=30)

        def rendezvous(payload, ctx):
            # Only passes if 8 jobs really run at the same time.
            barrier.wait()
            return {"ok": True}

        scratch_kinds("test.barrier", rendezvous)
        service = make_service(workers=8, queue_limit=16)
        try:
            jobs = [service.submit(JobSpec(kind="test.barrier"))
                    for _ in range(8)]
            for job in jobs:
                assert job.wait(30)
                assert job.state == "succeeded"
        finally:
            service.shutdown()

    def test_full_queue_rejects_submission(self, scratch_kinds):
        gate = threading.Event()

        def blocker(payload, ctx):
            gate.wait(10)
            return {}

        scratch_kinds("test.gate2", blocker)
        service = make_service(workers=1, queue_limit=2)
        try:
            service.submit(JobSpec(kind="test.gate2"))  # runs, occupies
            time.sleep(0.2)  # let it dispatch so the queue is empty
            service.submit(JobSpec(kind="test.gate2"))
            service.submit(JobSpec(kind="test.gate2"))
            with pytest.raises(QueueFull):
                service.submit(JobSpec(kind="test.gate2"))
            stats = service.stats()
            assert stats["queue_depth"] == 2
            gate.set()
        finally:
            service.shutdown()


class TestShutdown:
    def test_graceful_shutdown_drains_everything(self, scratch_kinds):
        def slowish(payload, ctx):
            time.sleep(0.05)
            return {"tag": payload["tag"]}

        scratch_kinds("test.slowish", slowish)
        service = make_service(workers=2, queue_limit=32)
        jobs = [service.submit(JobSpec(kind="test.slowish",
                                       payload={"tag": i}))
                for i in range(10)]
        service.shutdown(drain=True)
        assert all(job.state == "succeeded" for job in jobs)
        assert [job.result["tag"] for job in jobs] == list(range(10))

    def test_non_drain_shutdown_cancels_queued(self, scratch_kinds):
        gate = threading.Event()

        def blocker(payload, ctx):
            gate.wait(10)
            return {"done": True}

        scratch_kinds("test.gate3", blocker)
        service = make_service(workers=1, queue_limit=8)
        running = service.submit(JobSpec(kind="test.gate3"))
        time.sleep(0.2)
        queued = service.submit(JobSpec(kind="test.gate3"))
        gate.set()
        service.shutdown(drain=False)
        assert running.state == "succeeded"  # in-flight always drains
        assert queued.state == "cancelled"

    def test_submit_after_shutdown_raises(self):
        service = make_service()
        service.shutdown()
        with pytest.raises(ServiceClosed):
            service.submit(JobSpec(kind="vp_run",
                                   payload={"source": EXIT_OK}))

    def test_shutdown_is_idempotent(self):
        service = make_service()
        service.shutdown()
        service.shutdown()


class TestTelemetry:
    def test_service_metrics_and_events(self, scratch_kinds):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        service = BatchService(workers=2, queue_limit=8,
                               telemetry=telemetry).start()
        try:
            job = service.submit(JobSpec(kind="vp_run",
                                         payload={"source": EXIT_OK}))
            assert job.wait(30) and job.state == "succeeded"
        finally:
            service.shutdown()
        metrics = telemetry.metrics.to_dict()
        assert metrics["serve.submitted"]["value"] == 1
        assert metrics["serve.completed.succeeded"]["value"] == 1
        assert metrics["serve.queue_wait_seconds"]["count"] == 1
        assert metrics["serve.job_seconds"]["count"] == 1
        assert metrics["serve.workers"]["value"] == 2
        types = [e["type"] for e in telemetry.events]
        for expected in ("serve.started", "job.submitted", "job.dispatched",
                         "job", "job.finished", "serve.stopped"):
            assert expected in types
        span = telemetry.events.last("job")
        assert span["dur_us"] >= 0 and span["kind"] == "vp_run"
