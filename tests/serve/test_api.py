"""HTTP/JSON API + client: endpoints, error mapping, backpressure."""

import threading
import time

import pytest

from repro.serve import BatchService, register_executor
from repro.serve.api import ServiceServer
from repro.serve.client import BackpressureError, ServiceClient, ServiceError
from repro.serve.executors import _EXECUTORS

EXIT_OK = """
_start:
    li a0, 5
    li a7, 93
    ecall
"""


@pytest.fixture
def server():
    service = BatchService(workers=2, queue_limit=8)
    service.start()
    srv = ServiceServer(service, port=0)  # ephemeral port
    srv.start()
    yield srv
    srv.close()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=10)


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_limit"] == 8

    def test_kinds(self, client):
        kinds = client.kinds()
        assert {"vp_run", "fault_campaign", "coverage", "wcet",
                "fuzz"} <= set(kinds)

    def test_submit_status_result(self, client):
        job = client.submit("vp_run", {"source": EXIT_OK})
        assert job["state"] in ("pending", "running")
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == "succeeded"
        assert done["result"]["exit_code"] == 5
        # Status endpoint never carries the result payload.
        assert "result" not in client.status(job["id"])

    def test_list_jobs_with_state_filter(self, client):
        job = client.submit("vp_run", {"source": EXIT_OK})
        client.wait(job["id"], timeout=30)
        listed = client.list_jobs(state="succeeded")
        assert any(item["id"] == job["id"] for item in listed)
        assert client.list_jobs(state="failed") == []

    def test_stats_exposes_metrics(self, client):
        job = client.submit("vp_run", {"source": EXIT_OK})
        client.wait(job["id"], timeout=30)
        stats = client.stats()
        assert stats["service"]["workers"] == 2
        assert stats["metrics"]["serve.submitted"]["value"] >= 1

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-does-not-exist")
        assert excinfo.value.status == 404

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v1/nonsense")
        assert excinfo.value.status == 404

    def test_result_before_done_409(self, client, server):
        gate = threading.Event()
        register_executor("test.api_gate")(
            lambda payload, ctx: (gate.wait(10), {})[1])
        try:
            job = client.submit("test.api_gate", {})
            with pytest.raises(ServiceError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.status == 409
            gate.set()
            assert client.wait(job["id"], timeout=30)["state"] == "succeeded"
        finally:
            gate.set()
            _EXECUTORS.pop("test.api_gate", None)

    def test_bad_request_400(self, client):
        for body in ({"kind": "no_such_kind", "payload": {}},
                     {"payload": {}},
                     {"kind": "vp_run", "payload": {}, "bogus": 1}):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/v1/jobs", body)
            assert excinfo.value.status == 400

    def test_cancel_endpoint(self, client):
        gate = threading.Event()
        register_executor("test.api_cancel")(
            lambda payload, ctx: (gate.wait(10), {})[1])
        try:
            # Two jobs on two workers; a third stays queued -> cancellable.
            client.submit("test.api_cancel", {})
            client.submit("test.api_cancel", {})
            queued = client.submit("test.api_cancel", {})
            reply = client.cancel(queued["id"])
            assert reply["cancelled"] is True
            gate.set()
            done = client.wait(queued["id"], timeout=30)
            assert done["state"] == "cancelled"
        finally:
            gate.set()
            _EXECUTORS.pop("test.api_cancel", None)


class TestBackpressureHTTP:
    def test_429_when_queue_full(self, server):
        client = ServiceClient(server.url, timeout=10)
        gate = threading.Event()
        register_executor("test.api_full")(
            lambda payload, ctx: (gate.wait(15), {})[1])
        try:
            # Fill both workers, then the whole queue (limit 8).
            for _ in range(2):
                client.submit("test.api_full", {})
            time.sleep(0.3)  # let them dispatch off the queue
            for _ in range(8):
                client.submit("test.api_full", {})
            with pytest.raises(BackpressureError) as excinfo:
                client.submit("test.api_full", {})
            assert excinfo.value.status == 429
            gate.set()
        finally:
            gate.set()
            _EXECUTORS.pop("test.api_full", None)


class TestShutdownHTTP:
    def test_shutdown_endpoint_drains(self):
        service = BatchService(workers=2, queue_limit=8)
        service.start()
        server = ServiceServer(service, port=0).start()
        client = ServiceClient(server.url, timeout=10)
        job = client.submit("vp_run", {"source": EXIT_OK})
        reply = client.shutdown(drain=True)
        assert reply["status"] == "shutting down"
        # The service drains the submitted job before stopping.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            tracked = service.get_job(job["id"])
            if tracked is not None and tracked.done:
                break
            time.sleep(0.1)
        assert service.get_job(job["id"]).state == "succeeded"
        server.close()
