"""ServiceClient transient-error retry + queue-full backpressure e2e."""

import io
import json
import threading
import urllib.error

import pytest

from repro.serve import BatchService, register_executor
from repro.serve.api import ServiceServer
from repro.serve.client import (BackpressureError, ServiceClient,
                                ServiceError, _is_transient)
from repro.serve.executors import _EXECUTORS


class FakeResponse:
    def __init__(self, payload):
        self._blob = json.dumps(payload).encode()

    def read(self):
        return self._blob

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestTransientRetry:
    def _client(self, monkeypatch, outcomes, sleeps=None):
        """A client whose urlopen pops scripted outcomes per call."""
        calls = {"n": 0}

        def fake_urlopen(request, timeout=None):
            outcome = outcomes[min(calls["n"], len(outcomes) - 1)]
            calls["n"] += 1
            if isinstance(outcome, Exception):
                raise outcome
            return FakeResponse(outcome)

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        if sleeps is not None:
            monkeypatch.setattr("time.sleep",
                                lambda delay: sleeps.append(delay))
        client = ServiceClient("http://127.0.0.1:1", retries=3,
                               retry_base_delay=0.05)
        return client, calls

    def test_connection_reset_retried_until_success(self, monkeypatch):
        sleeps = []
        client, calls = self._client(
            monkeypatch,
            [ConnectionResetError(), ConnectionResetError(),
             {"status": "ok"}],
            sleeps)
        assert client.health() == {"status": "ok"}
        assert calls["n"] == 3
        # Bounded exponential backoff: base, then doubled.
        assert sleeps == [0.05, 0.1]

    def test_broken_pipe_and_urlerror_wrapped_reset_are_transient(self):
        assert _is_transient(BrokenPipeError())
        assert _is_transient(
            urllib.error.URLError(ConnectionResetError()))
        assert not _is_transient(ValueError("nope"))
        assert not _is_transient(
            urllib.error.URLError(OSError("no route")))

    def test_retries_exhausted_raises_last_error(self, monkeypatch):
        client, calls = self._client(
            monkeypatch, [ConnectionResetError()], sleeps=[])
        with pytest.raises(ConnectionResetError):
            client.health()
        assert calls["n"] == 4  # 1 try + 3 retries

    def test_http_error_never_retried(self, monkeypatch):
        error = urllib.error.HTTPError(
            "http://x", 404, "Not Found", {}, io.BytesIO(b"{}"))
        client, calls = self._client(monkeypatch, [error])
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 404
        assert calls["n"] == 1

    def test_non_transient_oserror_not_retried(self, monkeypatch):
        client, calls = self._client(
            monkeypatch, [OSError("no route to host")])
        with pytest.raises(OSError):
            client.health()
        assert calls["n"] == 1

    def test_retries_zero_disables(self, monkeypatch):
        def fake_urlopen(request, timeout=None):
            raise ConnectionResetError()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        with pytest.raises(ConnectionResetError):
            client.health()


class TestQueueFullBackpressure:
    """Satellite e2e: full queue -> 429 + Retry-After via ServiceClient."""

    def test_429_retry_after_then_success_on_retry(self):
        release = threading.Event()
        register_executor("clog")(
            lambda payload, ctx: {"ok": release.wait(30)})
        service = BatchService(workers=1, queue_limit=1)
        service.start()
        server = ServiceServer(service, port=0)
        server.start()
        client = ServiceClient(server.url, timeout=10)
        try:
            running = client.submit("clog", {})  # occupies the worker
            import time

            deadline = time.monotonic() + 10
            while client.status(running["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = client.submit("clog", {})   # fills the queue
            with pytest.raises(BackpressureError) as excinfo:
                client.submit("clog", {})        # over capacity
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 1.0
            # Client-side retry contract: honor the hint, resubmit after
            # capacity frees up.
            release.set()
            client.wait(running["id"], timeout=30)
            client.wait(queued["id"], timeout=30)
            retried = client.submit("clog", {})
            assert client.wait(retried["id"],
                               timeout=30)["state"] == "succeeded"
        finally:
            release.set()
            client.shutdown(drain=True)
            server.close()
            _EXECUTORS.pop("clog", None)
