"""Cross-layer telemetry: campaigns, QTA, coverage, and the CLI."""

import json

import pytest

from repro.asm import assemble
from repro.coverage import measure_coverage
from repro.faultsim import Fault, FaultCampaign, STUCK_AT_1, TARGET_GPR
from repro.isa import RV32IMC_ZICSR
from repro.telemetry import Telemetry
from repro.wcet import analyze_program

CHECKED = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    li a3, 42
    bne a0, a3, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"""

LOOP = """
_start:
    li a0, 0
    li t0, 1
loop:              # @loopbound 10
    add a0, a0, t0
    addi t0, t0, 1
    li t1, 11
    blt t0, t1, loop
    li a7, 93
    ecall
"""

FAULTS = [Fault(TARGET_GPR, reg, bit, STUCK_AT_1)
          for reg in (10, 11, 25) for bit in (0, 5)]


class TestCampaignTelemetry:
    def test_events_and_metrics(self):
        telemetry = Telemetry()
        campaign = FaultCampaign(assemble(CHECKED, isa=RV32IMC_ZICSR),
                                 isa=RV32IMC_ZICSR, telemetry=telemetry)
        result = campaign.run(FAULTS)
        events = telemetry.events
        assert len(events.of_type("campaign.started")) == 1
        assert len(events.of_type("mutant.classified")) == len(FAULTS)
        finished = events.last("campaign.finished")
        assert finished["total"] == len(FAULTS)
        assert finished["counts"] == result.counts
        assert finished["mutants_per_second"] > 0
        metrics = telemetry.metrics
        assert metrics.counter(
            "faultsim.campaign.mutants_done").value == len(FAULTS)
        outcome_total = sum(
            metrics.counter(f"faultsim.campaign.outcome.{o}").value
            for o in ("masked", "sdc", "trap", "hang"))
        assert outcome_total == len(FAULTS)
        assert metrics.timer(
            "faultsim.campaign.mutant_seconds").count == len(FAULTS)

    def test_progress_callback_without_telemetry(self):
        seen = []
        campaign = FaultCampaign(assemble(CHECKED, isa=RV32IMC_ZICSR),
                                 isa=RV32IMC_ZICSR)
        campaign.run(FAULTS, on_progress=seen.append,
                     progress_interval=0.0)
        assert seen  # at least the final report
        final = seen[-1]
        assert final["done"] == final["total"] == len(FAULTS)
        assert final["mutants_per_second"] > 0

    def test_disabled_telemetry_emits_nothing(self):
        campaign = FaultCampaign(assemble(CHECKED, isa=RV32IMC_ZICSR),
                                 isa=RV32IMC_ZICSR)
        assert campaign.telemetry.enabled is False
        campaign.run(FAULTS)
        assert len(campaign.telemetry.events) == 0


class TestQtaTelemetry:
    def test_cosim_overhead_recorded(self):
        telemetry = Telemetry()
        analysis = analyze_program(LOOP, isa=RV32IMC_ZICSR,
                                   telemetry=telemetry)
        summary = telemetry.events.last("qta.summary")
        assert summary is not None
        assert summary["static_bound"] == analysis.static_bound.cycles
        assert summary["wcet_time"] == analysis.result.wcet_time
        assert summary["cosim_overhead"] > 0
        metrics = telemetry.metrics
        assert metrics.timer("wcet.qta.cosim_seconds").count == 1
        assert metrics.timer("wcet.qta.plain_seconds").count == 1
        assert metrics.gauge("wcet.qta.pessimism").value >= 1.0

    def test_disabled_telemetry_skips_plain_run(self):
        # No qta events, no metrics — and still a correct analysis.
        analysis = analyze_program(LOOP, isa=RV32IMC_ZICSR)
        assert analysis.result.wcet_time > 0


class TestCoverageTelemetry:
    def test_collection_cost_recorded(self):
        telemetry = Telemetry()
        program = assemble(LOOP, isa=RV32IMC_ZICSR)
        measure_coverage(program, isa=RV32IMC_ZICSR, telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics.counter("coverage.collector.runs").value == 1
        assert metrics.counter("coverage.collector.instructions").value > 0
        assert metrics.timer("coverage.collector.run_seconds").count == 1
        (event,) = telemetry.events.of_type("coverage.collected")
        assert event["dur_us"] >= 0


class TestCli:
    @pytest.fixture
    def checked_file(self, tmp_path):
        path = tmp_path / "checked.s"
        path.write_text(CHECKED)
        return str(path)

    def test_faults_stats_prints_summary(self, checked_file, capsys):
        from repro.cli import main
        assert main(["faults", checked_file, "--mutants", "20",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "=== telemetry ===" in out
        assert "mutants/s" in out
        assert "faultsim.campaign.outcome.sdc" in out
        assert "faultsim.campaign.mutants_done" in out
        assert "campaign.finished" in out

    def test_faults_trace_out_is_perfetto_loadable(self, checked_file,
                                                   tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "trace.json")
        assert main(["faults", checked_file, "--mutants", "10",
                     "--trace-out", trace_path]) == 0
        with open(trace_path) as handle:
            trace = json.load(handle)
        assert isinstance(trace, list) and trace
        for event in trace:
            assert {"ph", "ts", "name", "pid"} <= set(event)
        assert any(e["name"] == "mutant.classified" for e in trace)

    def test_events_out_then_stats_subcommand(self, checked_file, tmp_path,
                                              capsys):
        from repro.cli import main
        events_path = str(tmp_path / "events.jsonl")
        assert main(["faults", checked_file, "--mutants", "10",
                     "--events-out", events_path]) == 0
        capsys.readouterr()
        assert main(["stats", events_path]) == 0
        out = capsys.readouterr().out
        assert "fault campaigns" in out
        assert "mutants/s" in out
        assert "faultsim.campaign.mutants_done" in out

    def test_run_stats_reports_vp_metrics(self, checked_file, capsys):
        from repro.cli import main
        main(["run", checked_file, "--stats"])
        out = capsys.readouterr().out
        assert "vp.cpu.insns_retired" in out
        assert "VP runs" in out

    def test_telemetry_disabled_without_flags(self, checked_file, capsys):
        from repro.cli import main
        from repro.telemetry import current_telemetry
        assert main(["faults", checked_file, "--mutants", "5"]) == 0
        assert current_telemetry().enabled is False
        assert "=== telemetry ===" not in capsys.readouterr().out
