"""TelemetryPlugin: VP instrumentation through the plugin API."""

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.telemetry import Telemetry, TelemetryPlugin
from repro.vp import Machine, MachineConfig

PROGRAM = """
_start:
    la t0, buffer
    li t1, 0
    li t2, 10
loop:
    sw t1, 0(t0)
    lw t3, 0(t0)
    addi t0, t0, 4
    addi t1, t1, 1
    blt t1, t2, loop
    li a0, 0
    li a7, 93
    ecall
.data
buffer: .word 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
"""


def run_instrumented():
    telemetry = Telemetry()
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(PROGRAM, isa=RV32IMC_ZICSR))
    machine.telemetry = telemetry
    machine.add_plugin(TelemetryPlugin(telemetry))
    result = machine.run(max_instructions=10_000)
    return telemetry, result


class TestCollectedMetrics:
    def test_instruction_and_cycle_counts(self):
        telemetry, result = run_instrumented()
        metrics = telemetry.metrics
        assert metrics.counter("vp.cpu.insns_retired").value == \
            result.instructions
        assert metrics.counter("vp.cpu.cycles").value == result.cycles
        assert metrics.gauge("vp.cpu.mips").value > 0

    def test_tb_cache_statistics(self):
        telemetry, _ = run_instrumented()
        metrics = telemetry.metrics
        hits = metrics.counter("vp.tb.hits").value
        misses = metrics.counter("vp.tb.misses").value
        assert misses > 0
        assert hits > 0  # the loop body re-executes from the cache
        assert metrics.gauge("vp.tb.hit_rate").value == \
            hits / (hits + misses)
        assert metrics.counter("vp.tb.translated").value > 0
        assert metrics.counter("vp.tb.executed").value >= \
            metrics.counter("vp.tb.translated").value

    def test_memory_access_accounting(self):
        telemetry, _ = run_instrumented()
        metrics = telemetry.metrics
        assert metrics.counter("vp.mem.loads").value == 10
        assert metrics.counter("vp.mem.stores").value == 10
        histogram = metrics.histogram("vp.mem.access_width")
        assert histogram.count == 20
        assert histogram.min == histogram.max == 4  # all word accesses

    def test_flush_counted_via_hook(self):
        telemetry, _ = run_instrumented()
        # add_plugin flushes the TB cache once after registration.
        assert telemetry.metrics.counter("vp.tb.flushes").value >= 1

    def test_run_summary_event_emitted(self):
        telemetry, result = run_instrumented()
        (event,) = telemetry.events.of_type("vp.run")
        assert event["instructions"] == result.instructions
        assert event["exit_code"] == 0
        assert event["loads"] == 10 and event["stores"] == 10
        assert event["tb_hit_rate"] > 0

    def test_machine_lifecycle_events(self):
        telemetry, _ = run_instrumented()
        assert len(telemetry.events.of_type("run.started")) == 1
        finished = telemetry.events.last("run.finished")
        assert finished["stop_reason"] == "exit"


class TestTrapCounting:
    def test_traps_counted(self):
        telemetry = Telemetry()
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        # Set up mtvec, take one ecall trap, then exit from the handler.
        machine.load(assemble("""
_start:
    la t0, handler
    csrw mtvec, t0
    ecall
handler:
    li a0, 0
    li a7, 93
    ecall
""", isa=RV32IMC_ZICSR))
        machine.config.semihosting = False
        machine.cpu.ecall_handler = None
        machine.add_plugin(TelemetryPlugin(telemetry))
        machine.run(max_instructions=1000)
        assert telemetry.metrics.counter("vp.cpu.traps").value >= 1
        assert telemetry.metrics.counter("vp.cpu.interrupts").value == 0


class TestAttachHelper:
    def test_attach_telemetry_registers_plugin(self):
        telemetry = Telemetry()
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(PROGRAM, isa=RV32IMC_ZICSR))
        plugin = machine.attach_telemetry(telemetry)
        assert isinstance(plugin, TelemetryPlugin)
        assert machine.telemetry is telemetry
        machine.run(max_instructions=10_000)
        assert telemetry.metrics.counter("vp.cpu.insns_retired").value > 0
