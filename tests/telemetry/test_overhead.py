"""Disabled telemetry must be (near-)free.

Acceptance: telemetry off by default adds < 5 % to the F1 emulator
workload.  Three angles, from strongest to most empirical:

1. structural — with telemetry disabled nothing is registered on the
   CPU's hook table, so the per-instruction path is untouched;
2. unit cost — the exact per-mutant null-instrumentation sequence is
   measured directly and must be < 5 % of one real mutant simulation;
3. end-to-end — the F1 workload with the disabled-session branch taken
   vs. not taken (best-of-N, generous bound to absorb scheduler noise).
"""

import time

import pytest

from repro.asm import assemble
from repro.faultsim import Fault, FaultCampaign, STUCK_AT_1, TARGET_GPR
from repro.isa import RV32IMC_ZICSR
from repro.telemetry import NULL_TELEMETRY, current_telemetry
from repro.vp import Machine, MachineConfig

# The F1 benchmark's compute-heavy loop, shortened for a unit test.
WORKLOAD = """
_start:
    li t0, 0
    li t1, 20000
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""

CHECKED = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    li a3, 42
    bne a0, a3, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"""


def run_workload(telemetry=None):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(assemble(WORKLOAD, isa=RV32IMC_ZICSR))
    if telemetry is not None:
        machine.telemetry = telemetry
    start = time.perf_counter()
    result = machine.run(max_instructions=500_000)
    elapsed = time.perf_counter() - start
    assert result.stop_reason == "exit"
    return elapsed


class TestStructurallyFree:
    def test_default_session_is_disabled(self):
        assert current_telemetry().enabled is False

    def test_no_hooks_registered_when_disabled(self):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(WORKLOAD, isa=RV32IMC_ZICSR))
        hooks = machine.cpu.hooks
        assert machine.telemetry is None
        assert hooks.plugins == []
        for attr in ("block_translate", "block_exec", "insn_exec",
                     "mem_access", "trap", "tb_flush", "exit"):
            assert getattr(hooks, attr) == []

    def test_null_instruments_allocate_nothing(self):
        metrics = NULL_TELEMETRY.metrics
        assert metrics.counter("a") is metrics.counter("b")
        assert len(NULL_TELEMETRY.events) == 0
        NULL_TELEMETRY.events.emit("x", y=1)
        assert len(NULL_TELEMETRY.events) == 0


class TestUnitCost:
    def test_null_path_below_5_percent_of_mutant_cost(self):
        """Time the exact per-mutant instrumentation against one mutant."""
        campaign = FaultCampaign(assemble(CHECKED, isa=RV32IMC_ZICSR),
                                 isa=RV32IMC_ZICSR)
        fault = Fault(TARGET_GPR, 25, 3, STUCK_AT_1)
        campaign.run_one(fault)  # warm the golden run + snapshot
        rounds = 5
        start = time.perf_counter()
        for _ in range(rounds):
            campaign.run_one(fault)
        mutant_seconds = (time.perf_counter() - start) / rounds

        telemetry = campaign.telemetry
        assert telemetry.enabled is False
        metrics = telemetry.metrics.namespace("faultsim.campaign")
        timer = metrics.timer("mutant_seconds")
        counter = metrics.counter("mutants_done")
        iterations = 10_000
        start = time.perf_counter()
        for _ in range(iterations):
            # The per-mutant instrumentation sequence from
            # FaultCampaign.run, against the null session.
            with timer:
                pass
            counter.inc()
            counter.inc()
            if telemetry.enabled:  # pragma: no cover - always false here
                raise AssertionError
        per_mutant_overhead = (time.perf_counter() - start) / iterations
        assert per_mutant_overhead < 0.05 * mutant_seconds, (
            f"null instrumentation costs {per_mutant_overhead * 1e6:.2f}us "
            f"per mutant vs {mutant_seconds * 1e6:.0f}us mutant runtime"
        )


class TestEndToEnd:
    def test_f1_workload_overhead_below_5_percent(self):
        """Disabled-session branch vs. no session at all on the VP.

        The two configurations run interleaved (cancels clock/thermal
        drift) and best-of-N is compared — the code paths differ by one
        attribute test per run() call, so anything beyond noise fails.
        """
        run_workload()  # warm-up
        baseline_times, null_times = [], []
        for _ in range(5):
            baseline_times.append(run_workload())
            null_times.append(run_workload(NULL_TELEMETRY))
        ratio = min(null_times) / min(baseline_times)
        assert ratio < 1.05, (
            f"disabled telemetry slowed the F1 workload by "
            f"{(ratio - 1) * 100:.1f}%"
        )
