"""Prometheus text exposition: rendering and (validating) parsing."""

import pytest

from repro.telemetry import MetricsRegistry, parse_prometheus, \
    render_prometheus
from repro.telemetry.prometheus import CONTENT_TYPE


def registry_snapshot():
    registry = MetricsRegistry()
    registry.counter("serve.submitted").inc(7)
    registry.gauge("serve.queue_depth").set(3)
    histogram = registry.histogram("serve.job_seconds",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry.to_dict()


class TestRender:
    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "0.0.4" in CONTENT_TYPE

    def test_counter_rendering(self):
        text = render_prometheus(registry_snapshot())
        assert "# TYPE repro_serve_submitted_total counter" in text
        assert "repro_serve_submitted_total 7" in text

    def test_gauge_rendering(self):
        text = render_prometheus(registry_snapshot())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative(self):
        parsed = parse_prometheus(render_prometheus(registry_snapshot()))
        series = parsed["repro_serve_job_seconds_bucket"]
        by_le = {dict(labels)["le"]: value
                 for labels, value in series.items()}
        assert by_le["0.1"] == 1
        assert by_le["1.0"] == 2
        assert by_le["+Inf"] == 3
        assert parsed["repro_serve_job_seconds_count"][()] == 3
        assert parsed["repro_serve_job_seconds_sum"][()] == \
            pytest.approx(5.55)

    def test_extra_gauges(self):
        text = render_prometheus({}, extra_gauges={"repro_up": 1})
        parsed = parse_prometheus(text)
        assert parsed["repro_up"][()] == 1.0

    def test_names_are_flattened(self):
        text = render_prometheus(registry_snapshot())
        # Dotted registry names become underscore-flattened repro_* ones.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert name.startswith("repro_")
                assert "." not in name

    def test_extra_gauges_are_not_double_prefixed(self):
        text = render_prometheus(
            {}, extra_gauges={"repro_events_dropped": 2})
        parsed = parse_prometheus(text)
        assert parsed["repro_events_dropped"][()] == 2.0


class TestParse:
    def test_round_trip(self):
        snapshot = registry_snapshot()
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed["repro_serve_submitted_total"][()] == 7.0

    def test_skips_comments_and_blanks(self):
        parsed = parse_prometheus("# HELP x y\n\nx 1\n")
        assert parsed["x"][()] == 1.0

    def test_labels(self):
        parsed = parse_prometheus('x_bucket{le="0.5"} 2\n')
        assert parsed["x_bucket"][(("le", "0.5"),)] == 2.0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all!{\n")

    def test_malformed_value_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("x notanumber\n")
