"""Metrics registry: instruments, namespacing, null implementations."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.telemetry.metrics import Histogram, Timer


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("vp.cpu.insns_retired")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("vp.cpu.mips")
        gauge.set(12.5)
        assert gauge.value == 12.5
        gauge.add(-2.5)
        assert gauge.value == 10.0


class TestHistogram:
    def test_bucket_assignment(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 1, 5, 50, 500):
            histogram.observe(value)
        # <=1: 0.5 and 1; <=10: 5; <=100: 50; overflow: 500
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 500
        assert histogram.mean == pytest.approx(556.5 / 5)

    def test_snapshot_shape(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1.5)
        snap = histogram.snapshot()
        assert snap["kind"] == "histogram"
        assert snap["count"] == 1
        assert snap["buckets"]["le_2"] == 1
        assert snap["buckets"]["inf"] == 0

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestTimer:
    def test_context_manager_records_duration(self):
        registry = MetricsRegistry()
        timer = registry.timer("qta.cosim_seconds")
        with timer:
            pass
        assert timer.count == 1
        assert timer.total_seconds >= 0.0

    def test_observe_external_duration(self):
        timer = Timer("t")
        timer.observe(1.5)
        assert timer.count == 1
        assert timer.total_seconds == 1.5


class TestNamespacing:
    def test_namespace_prefixes_names(self):
        registry = MetricsRegistry()
        vp = registry.namespace("vp")
        cpu = vp.namespace("cpu")
        cpu.counter("insns_retired").inc(7)
        assert registry.counter("vp.cpu.insns_retired").value == 7
        assert "vp.cpu.insns_retired" in registry

    def test_to_dict_uses_full_names(self):
        registry = MetricsRegistry()
        registry.namespace("faultsim.campaign").counter("mutants_done").inc()
        snap = registry.to_dict()
        assert snap == {"faultsim.campaign.mutants_done":
                        {"kind": "counter", "value": 1}}

    def test_iteration_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [name for name, _ in registry] == ["a", "b"]


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_instruments_are_shared_noops(self):
        counter = NULL_REGISTRY.counter("anything")
        assert counter is NULL_REGISTRY.counter("something.else")
        counter.inc(1000)
        assert counter.value == 0
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(5)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.to_dict() == {}
        assert len(NULL_REGISTRY) == 0

    def test_namespace_returns_self(self):
        assert NULL_REGISTRY.namespace("vp.cpu") is NULL_REGISTRY


class TestPercentiles:
    def histogram(self, values, buckets=(1.0, 10.0, 100.0)):
        h = Histogram("t", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_returns_none(self):
        assert Histogram("t").percentile(0.5) is None

    def test_quantile_range_validated(self):
        h = self.histogram([1.0])
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_interpolates_within_bucket(self):
        # 10 observations uniformly filling the (1, 10] bucket.
        h = self.histogram([2 + 0.8 * i for i in range(10)])
        p50 = h.percentile(0.5)
        assert 2.0 <= p50 <= 9.2
        assert h.percentile(0.1) < p50 < h.percentile(0.9)

    def test_clamped_to_observed_extremes(self):
        h = self.histogram([5.0, 5.0, 5.0])
        # Bucket interpolation alone would spread across (1, 10]; the
        # observed min/max pin it to the true value.
        assert h.percentile(0.5) == 5.0
        assert h.percentile(0.99) == 5.0

    def test_p100_is_max(self):
        h = self.histogram([0.5, 3.0, 250.0])
        assert h.percentile(1.0) == 250.0

    def test_overflow_bucket_uses_max(self):
        h = self.histogram([500.0, 900.0])
        p99 = h.percentile(0.99)
        assert 100.0 <= p99 <= 900.0

    def test_percentiles_convenience_shape(self):
        h = self.histogram([1.0, 2.0, 3.0])
        summary = h.percentiles()
        assert set(summary) == {"p50", "p90", "p99"}
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_snapshot_includes_percentiles(self):
        h = self.histogram([1.0, 2.0, 3.0])
        snap = h.snapshot()
        assert {"p50", "p90", "p99"} <= set(snap)
        assert snap["p50"] is not None
        assert snap["p50"] <= snap["p99"]
