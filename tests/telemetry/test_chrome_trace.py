"""Chrome trace-event export: structure required by chrome://tracing."""

import json

from repro.telemetry import EventLog, export_chrome_trace, to_chrome_trace


def sample_events():
    log = EventLog()
    log.emit("run.started", isa="rv32imc")
    log.events.append({"type": "qta.cosim", "ts_us": 10, "dur_us": 500,
                       "name_field": "prog"})
    log.emit("campaign.progress", done=5, total=10)
    log.emit("campaign.finished", total=10)
    return log.events


class TestStructure:
    def test_every_event_has_required_keys(self):
        trace = to_chrome_trace(sample_events())
        assert isinstance(trace, list) and trace
        for event in trace:
            assert {"ph", "ts", "name", "pid"} <= set(event)

    def test_duration_events_become_complete_slices(self):
        trace = to_chrome_trace(sample_events())
        slices = [e for e in trace if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "qta.cosim"
        assert slices[0]["dur"] == 500
        assert slices[0]["ts"] == 10

    def test_progress_events_become_counters(self):
        trace = to_chrome_trace(sample_events())
        counters = [e for e in trace if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"done": 5}

    def test_other_events_become_instants(self):
        trace = to_chrome_trace(sample_events())
        instants = [e for e in trace if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"run.started",
                                                 "campaign.finished"}

    def test_lane_metadata_per_subsystem(self):
        trace = to_chrome_trace(sample_events())
        thread_names = {e["args"]["name"] for e in trace
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names == {"run", "qta", "campaign"}
        # Each lane gets a distinct tid.
        tids = [e["tid"] for e in trace
                if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(tids) == len(set(tids))


class TestExport:
    def test_file_is_loadable_json_array(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export_chrome_trace(sample_events(), path)
        with open(path) as handle:
            trace = json.load(handle)
        assert isinstance(trace, list)
        assert any(e["ph"] == "X" for e in trace)
