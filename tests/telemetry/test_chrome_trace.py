"""Chrome trace-event export: structure required by chrome://tracing."""

import json

from repro.telemetry import EventLog, export_chrome_trace, to_chrome_trace


def sample_events():
    log = EventLog()
    log.emit("run.started", isa="rv32imc")
    log.events.append({"type": "qta.cosim", "ts_us": 10, "dur_us": 500,
                       "name_field": "prog"})
    log.emit("campaign.progress", done=5, total=10)
    log.emit("campaign.finished", total=10)
    return log.events


class TestStructure:
    def test_every_event_has_required_keys(self):
        trace = to_chrome_trace(sample_events())
        assert isinstance(trace, list) and trace
        for event in trace:
            assert {"ph", "ts", "name", "pid"} <= set(event)

    def test_duration_events_become_complete_slices(self):
        trace = to_chrome_trace(sample_events())
        slices = [e for e in trace if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["name"] == "qta.cosim"
        assert slices[0]["dur"] == 500
        assert slices[0]["ts"] == 10

    def test_progress_events_become_counters(self):
        trace = to_chrome_trace(sample_events())
        counters = [e for e in trace if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"done": 5}

    def test_other_events_become_instants(self):
        trace = to_chrome_trace(sample_events())
        instants = [e for e in trace if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"run.started",
                                                 "campaign.finished"}

    def test_lane_metadata_per_subsystem(self):
        trace = to_chrome_trace(sample_events())
        thread_names = {e["args"]["name"] for e in trace
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert thread_names == {"run", "qta", "campaign"}
        # Each lane gets a distinct tid.
        tids = [e["tid"] for e in trace
                if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(tids) == len(set(tids))


class TestExport:
    def test_file_is_loadable_json_array(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export_chrome_trace(sample_events(), path)
        with open(path) as handle:
            trace = json.load(handle)
        assert isinstance(trace, list)
        assert any(e["ph"] == "X" for e in trace)


class TestMultiProcessMerge:
    """Events merged from process-pool workers carry a ``pid`` field and
    must land on their own process row in the trace viewer."""

    def merged_events(self):
        # Parent-side service events (no pid field -> default row) plus
        # two workers' rebased events, as _merge_worker_events produces.
        return [
            {"type": "job.queue_wait", "ts_us": 0, "dur_us": 100,
             "id": "job-1"},
            {"type": "job", "ts_us": 100, "dur_us": 900, "id": "job-1"},
            {"type": "campaign.started", "ts_us": 150, "pid": 4001},
            {"type": "mutant.classified", "ts_us": 200, "dur_us": 50,
             "pid": 4001},
            {"type": "campaign.started", "ts_us": 160, "pid": 4002},
            {"type": "mutant.classified", "ts_us": 210, "dur_us": 60,
             "pid": 4002},
        ]

    def test_distinct_pid_rows(self):
        trace = to_chrome_trace(self.merged_events())
        pids = {e["pid"] for e in trace if e["ph"] != "M"}
        assert len(pids) == 3  # parent + two workers

    def test_worker_process_names(self):
        trace = to_chrome_trace(self.merged_events())
        names = {e["pid"]: e["args"]["name"] for e in trace
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert len(names) == 3
        assert sum("worker pid" in n for n in names.values()) == 2
        assert "worker pid 4001" in names[4001]

    def test_lanes_are_per_process(self):
        trace = to_chrome_trace(self.merged_events())
        # The same subsystem lane in two workers gets independent tids,
        # so concurrent spans never collapse onto one thread row.
        mutant_rows = {(e["pid"], e["tid"]) for e in trace
                       if e.get("name") == "mutant.classified"
                       and e["ph"] == "X"}
        assert len(mutant_rows) == 2

    def test_concurrent_spans_survive_round_trip(self, tmp_path):
        path = tmp_path / "merged.json"
        export_chrome_trace(self.merged_events(), str(path))
        trace = json.loads(path.read_text())
        slices = [e for e in trace if e["ph"] == "X"]
        assert {e["name"] for e in slices} == \
            {"job.queue_wait", "job", "mutant.classified"}
        # The two worker slices overlap in time on different pid rows.
        workers = [e for e in slices if e["name"] == "mutant.classified"]
        assert workers[0]["pid"] != workers[1]["pid"]
