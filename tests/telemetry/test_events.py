"""Event log: typed records, monotonic timestamps, JSONL round-trip."""

import pytest

from repro.telemetry import EventLog, NULL_EVENT_LOG


def make_log_with_clock():
    """An EventLog driven by a fake clock we can advance."""
    state = {"now": 100.0}
    log = EventLog(clock=lambda: state["now"])
    return log, state


class TestEmit:
    def test_records_type_and_fields(self):
        log = EventLog()
        record = log.emit("run.started", entry=0x80000000, isa="rv32i")
        assert record["type"] == "run.started"
        assert record["entry"] == 0x80000000
        assert log.events == [record]

    def test_timestamps_are_monotonic_offsets(self):
        log, state = make_log_with_clock()
        log.emit("a")
        state["now"] += 0.5
        log.emit("b")
        ts = [e["ts_us"] for e in log.events]
        assert ts == [0, 500_000]

    def test_span_records_duration(self):
        log, state = make_log_with_clock()
        with log.span("qta.cosim", name="prog"):
            state["now"] += 0.25
        (event,) = log.events
        assert event["type"] == "qta.cosim"
        assert event["ts_us"] == 0
        assert event["dur_us"] == 250_000
        assert event["name"] == "prog"


class TestQuerying:
    def test_of_type_and_last(self):
        log = EventLog()
        log.emit("mutant.classified", outcome="sdc")
        log.emit("campaign.progress", done=1)
        log.emit("mutant.classified", outcome="masked")
        assert len(log.of_type("mutant.classified")) == 2
        assert log.last("mutant.classified")["outcome"] == "masked"
        assert log.last("missing") is None
        assert len(log) == 3


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        log = EventLog()
        log.emit("run.started", isa="rv32imc")
        log.emit("run.finished", exit_code=0, instructions=42)
        path = str(tmp_path / "events.jsonl")
        log.save_jsonl(path)
        loaded = EventLog.load_jsonl(path)
        assert loaded.events == log.events

    def test_to_jsonl_one_record_per_line(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("{") for line in lines)

    def test_parse_skips_blank_lines(self):
        records = EventLog.parse_jsonl(['{"type": "a", "ts_us": 0}', "", "  "])
        assert records == [{"type": "a", "ts_us": 0}]


class TestInterleavedSpans:
    """Spans append on *exit*, so nested/overlapping spans interleave with
    instantaneous events — the saved JSONL must reproduce that exactly
    (the Chrome-trace exporter and `repro stats` both rely on it)."""

    def build_interleaved_log(self):
        log, state = make_log_with_clock()
        log.emit("job.submitted", id="job-1")
        outer = log.span("job", id="job-1", worker="worker-0")
        outer.__enter__()
        state["now"] += 0.125
        with log.span("campaign.golden", id="job-1"):
            state["now"] += 0.25
        log.emit("campaign.progress", done=10)
        state["now"] += 0.125
        with log.span("campaign.mutants", id="job-1"):
            state["now"] += 0.5
        outer.__exit__(None, None, None)
        log.emit("job.finished", id="job-1")
        return log

    def test_exit_order_and_durations(self):
        log = self.build_interleaved_log()
        types = [e["type"] for e in log.events]
        assert types == ["job.submitted", "campaign.golden",
                         "campaign.progress", "campaign.mutants",
                         "job", "job.finished"]
        spans = {e["type"]: e for e in log.events if "dur_us" in e}
        assert spans["campaign.golden"]["dur_us"] == 250_000
        assert spans["campaign.mutants"]["dur_us"] == 500_000
        # The outer span covers the whole interleaved stretch.
        assert spans["job"]["ts_us"] == 0
        assert spans["job"]["dur_us"] == 1_000_000

    def test_save_load_preserves_interleaving(self, tmp_path):
        log = self.build_interleaved_log()
        path = str(tmp_path / "interleaved.jsonl")
        log.save_jsonl(path)
        loaded = EventLog.load_jsonl(path)
        assert loaded.events == log.events
        # Duration events survive as spans after the round trip.
        reloaded_spans = [e for e in loaded.events if "dur_us" in e]
        assert len(reloaded_spans) == 3

    def test_chrome_trace_accepts_interleaved_spans(self, tmp_path):
        from repro.telemetry import to_chrome_trace

        log = self.build_interleaved_log()
        trace = to_chrome_trace(log.events)
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == 3


class TestNullEventLog:
    def test_emit_and_span_are_noops(self):
        assert NULL_EVENT_LOG.enabled is False
        assert NULL_EVENT_LOG.emit("anything", x=1) is None
        with NULL_EVENT_LOG.span("anything"):
            pass
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.of_type("anything") == []
        assert NULL_EVENT_LOG.last("anything") is None
        assert NULL_EVENT_LOG.to_jsonl() == ""


class TestRingBuffer:
    def test_unbounded_when_max_events_none(self):
        log = EventLog(max_events=None)
        for i in range(1000):
            log.emit("tick", i=i)
        assert len(log.events) == 1000
        assert log.dropped_events == 0
        assert not log.overflowed

    def test_eviction_counts_drops_and_latches_overflow(self):
        log = EventLog(max_events=100)
        for i in range(101):
            log.emit("tick", i=i)
        # One chunked eviction (~10% of the cap) keeps appends O(1).
        assert log.dropped_events == 10
        assert log.overflowed
        assert len(log.events) == 91
        assert log.total_appended == 101
        # The oldest surviving record is the first one not evicted.
        assert log.events[0]["i"] == 10

    def test_overflow_flag_stays_set(self):
        log = EventLog(max_events=100)
        for i in range(101):
            log.emit("tick")
        assert log.overflowed
        log.emit("tick")  # well under the cap again
        assert log.overflowed

    def test_stats_shape(self):
        log = EventLog(max_events=100)
        for _ in range(150):
            log.emit("tick")
        stats = log.stats()
        assert stats["total_appended"] == 150
        assert stats["events"] == len(log.events)
        assert stats["dropped_events"] == log.dropped_events
        assert stats["overflowed"] is True
        assert stats["max_events"] == 100

    def test_extend_participates_in_accounting(self):
        log = EventLog(max_events=100)
        log.extend([{"type": "w", "ts_us": i} for i in range(150)])
        assert log.total_appended == 150
        assert log.overflowed


class TestTail:
    def test_cursor_sees_each_record_exactly_once(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        first = log.tail(0)
        assert [e["type"] for e in first["events"]] == ["a", "b"]
        assert first["missed"] == 0
        log.emit("c")
        second = log.tail(first["next"])
        assert [e["type"] for e in second["events"]] == ["c"]
        assert second["next"] == 3
        assert log.tail(second["next"])["events"] == []

    def test_missed_counts_evicted_records(self):
        log = EventLog(max_events=100)
        cursor = log.tail(0)["next"]
        for i in range(150):
            log.emit("tick", i=i)
        batch = log.tail(cursor)
        # Eviction ran past the cursor: the reader is told how many
        # requested records are gone rather than silently skipping them.
        assert batch["missed"] == log.dropped_events > 0
        assert batch["events"][0]["i"] == log.dropped_events
        assert batch["overflowed"]

    def test_negative_since_rejected(self):
        with pytest.raises(ValueError):
            EventLog().tail(-1)
