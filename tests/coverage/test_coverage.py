"""Coverage metric and collector tests."""

import pytest

from repro.asm import assemble
from repro.coverage import empty_report, measure_coverage, measure_suite
from repro.isa import RV32IMC_ZICSR, RV32IMCF_ZICSR, RV32IM, IsaConfig

EXIT = "\n    li a7, 93\n    ecall\n"


def cov(source, isa=RV32IMC_ZICSR, **kw):
    return measure_coverage(assemble(source, isa=isa), isa=isa, **kw)


class TestInstructionCoverage:
    def test_executed_types_recorded(self):
        report = cov("_start: add a0, a1, a2\nsub a3, a4, a5" + EXIT)
        assert {"add", "sub", "addi", "ecall"} <= report.insn_types

    def test_unexecuted_types_missing(self):
        report = cov("_start: nop" + EXIT)
        assert "mul" in report.missed_insn_types()
        assert "mul" not in report.insn_types

    def test_universe_matches_isa(self):
        small = cov("_start: nop" + EXIT, isa=RV32IM)
        big = cov("_start: nop" + EXIT, isa=RV32IMC_ZICSR)
        assert len(big.insn_universe) > len(small.insn_universe)
        assert "c.addi" not in small.insn_universe

    def test_coverage_fraction(self):
        report = cov("_start: nop" + EXIT)
        expected = len(report.insn_types) / len(report.insn_universe)
        assert report.insn_coverage == pytest.approx(expected)

    def test_skipped_code_not_counted(self):
        report = cov("""
        _start:
            j skip
            mul a0, a1, a2
        skip:
        """ + EXIT)
        assert "mul" not in report.insn_types

    def test_module_breakdown(self):
        report = cov("_start: mul a0, a1, a2" + EXIT)
        breakdown = report.module_breakdown()
        assert breakdown["M"][0] == 1
        assert breakdown["M"][1] == 8
        assert breakdown["I"][1] > 30


class TestRegisterCoverage:
    def test_gpr_reads_and_writes_tracked(self):
        report = cov("_start: add a3, a1, a2" + EXIT)
        assert 11 in report.gprs_read
        assert 12 in report.gprs_read
        assert 13 in report.gprs_written
        assert 13 in report.gprs_accessed

    def test_untouched_gprs_missed(self):
        report = cov("_start: nop" + EXIT)
        assert 25 in report.missed_gprs()

    def test_csr_accesses_tracked(self):
        report = cov("_start: csrr a0, mscratch" + EXIT)
        assert 0x340 in report.csrs_accessed
        assert report.csr_coverage > 0

    def test_fpr_tracking_needs_f(self):
        report = cov("""
        _start:
            fmv.w.x fa0, a1
            fmv.x.w a2, fa0
        """ + EXIT, isa=RV32IMCF_ZICSR)
        assert 10 in report.fprs_written
        assert 10 in report.fprs_read
        assert report.fpr_coverage == pytest.approx(1 / 32)

    def test_fpr_coverage_zero_without_f(self):
        report = cov("_start: nop" + EXIT)
        assert not report.has_fprs
        assert report.fpr_coverage == 0.0
        assert report.missed_fprs() == []


class TestMemoryCoverage:
    def test_addresses_tracked_per_byte(self):
        report = cov("""
        _start:
            li t0, 0x80002000
            sw t1, 0(t0)
            lb t2, 8(t0)
        """ + EXIT)
        assert {0x80002000, 0x80002001, 0x80002002, 0x80002003} <= \
            report.mem_written_addrs
        assert report.mem_read_addrs == {0x80002008}


class TestUnion:
    def test_union_combines_all_sets(self):
        a = cov("_start: add a0, a1, a2" + EXIT)
        b = cov("_start: mul a3, a4, a5" + EXIT)
        combined = a | b
        assert {"add", "mul"} <= combined.insn_types
        assert combined.gprs_accessed >= a.gprs_accessed | b.gprs_accessed

    def test_union_monotone(self):
        a = cov("_start: add a0, a1, a2" + EXIT)
        b = cov("_start: mul a3, a4, a5" + EXIT)
        combined = a | b
        assert combined.insn_coverage >= max(a.insn_coverage, b.insn_coverage)
        assert combined.gpr_coverage >= max(a.gpr_coverage, b.gpr_coverage)

    def test_union_requires_same_universe(self):
        a = cov("_start: nop" + EXIT, isa=RV32IMC_ZICSR)
        b = cov("_start: nop" + EXIT, isa=RV32IMCF_ZICSR)
        with pytest.raises(ValueError, match="different ISA universes"):
            _ = a | b

    def test_union_idempotent(self):
        a = cov("_start: add a0, a1, a2" + EXIT)
        same = a | a
        assert same.insn_types == a.insn_types
        assert same.gprs_accessed == a.gprs_accessed


class TestSuiteMeasurement:
    def test_suite_reports_and_union(self):
        programs = [
            ("p1", assemble("_start: add a0, a1, a2" + EXIT)),
            ("p2", assemble("_start: mul a3, a4, a5" + EXIT)),
        ]
        suite = measure_suite(programs, isa=RV32IMC_ZICSR)
        assert len(suite.reports) == 2
        assert "mul" in suite.union.insn_types
        assert "add" in suite.union.insn_types

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            measure_suite([])

    def test_table_renders_all_rows(self):
        programs = [("only", assemble("_start: nop" + EXIT))]
        table = measure_suite(programs, isa=RV32IMC_ZICSR).table()
        assert "only" in table
        assert "combined" in table


class TestReportRendering:
    def test_to_text_mentions_key_figures(self):
        report = cov("_start: add a0, a1, a2" + EXIT)
        text = report.to_text("demo")
        assert "demo" in text
        assert "instruction types" in text
        assert "GPRs accessed" in text

    def test_summary_row_keys(self):
        report = cov("_start: nop" + EXIT)
        assert set(report.summary_row()) == {"insn", "gpr", "fpr", "csr"}

    def test_empty_report_is_zero(self):
        report = empty_report(RV32IMC_ZICSR)
        assert report.insn_coverage == 0.0
        assert report.gpr_coverage == 0.0


class TestDegenerateUniverses:
    """Empty denominators must read as 0.0 %, never ZeroDivisionError."""

    def _degenerate(self):
        from repro.coverage.report import CoverageReport
        return CoverageReport(isa_name="degenerate", insn_universe={},
                              csr_universe=frozenset(), has_fprs=False)

    def test_all_ratios_zero_not_crash(self):
        report = self._degenerate()
        assert report.insn_coverage == 0.0
        assert report.csr_coverage == 0.0
        assert report.fpr_coverage == 0.0
        assert report.gpr_coverage == 0.0

    def test_hits_against_empty_universe_still_zero(self):
        # Zero instructions in the universe but a non-empty hit set (e.g.
        # a report unioned across mismatched collectors) must not divide
        # by zero either.
        report = self._degenerate()
        report.insn_types = {"phantom"}
        report.csrs_accessed = {0x300}
        assert report.insn_coverage == 0.0
        assert report.csr_coverage == 0.0

    def test_rendering_survives_empty_universe(self):
        report = self._degenerate()
        text = report.to_text("degenerate")
        assert "0.0%" in text
        assert set(report.summary_row().values()) == {0.0}

    def test_fpr_coverage_without_fprs_is_zero(self):
        report = empty_report(RV32IM)
        report.fprs_read = {1}
        assert report.fpr_coverage == 0.0


class TestMachineValidation:
    def test_untraced_machine_rejected(self):
        from repro.vp import Machine, MachineConfig
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                        trace_registers=False))
        with pytest.raises(ValueError, match="trace_registers"):
            measure_coverage(assemble("_start: nop" + EXIT), machine=machine)
