"""Coverage-frontier folding and rendering."""

from repro.observe import frontier_from_events, render_frontier


def fuzz_session(job, coverage_points, finished=True):
    events = [{"type": "fuzz.started", "job": job, "isa": "rv32imc_zicsr",
               "seed": 0, "iterations": 100, "jobs": 1, "ts_us": 0}]
    for index, cov in enumerate(coverage_points):
        events.append({"type": "fuzz.coverage", "job": job,
                       "execs": index + 1, "coverage_elements": cov,
                       "corpus_size": index + 1, "ts_us": index})
    if finished:
        events.append({"type": "fuzz.finished", "job": job,
                       "iterations": 100,
                       "coverage_elements": coverage_points[-1],
                       "corpus_size": len(coverage_points), "findings": 2,
                       "execs_per_second": 500.0, "ts_us": 999})
    return events


class TestFolding:
    def test_empty_stream(self):
        frontier = frontier_from_events([])
        assert frontier == {"sessions": [], "active": 0}

    def test_ignores_unrelated_events(self):
        frontier = frontier_from_events([
            {"type": "job.submitted", "id": "job-1"},
            {"type": "mutant.classified", "outcome": "masked"},
        ])
        assert frontier["sessions"] == []

    def test_single_session_curve(self):
        frontier = frontier_from_events(fuzz_session("job-1", [3, 5, 9]))
        assert frontier["active"] == 0
        (session,) = frontier["sessions"]
        assert session["finished"]
        assert [p["coverage_elements"] for p in session["points"]] == \
            [3, 5, 9]
        assert session["latest"]["findings"] == 2
        assert session["started"]["iterations"] == 100

    def test_groups_by_job(self):
        events = fuzz_session("job-1", [3]) + fuzz_session("job-2", [7])
        frontier = frontier_from_events(events)
        assert [s["session"] for s in frontier["sessions"]] == \
            ["job-1", "job-2"]

    def test_active_counts_unfinished(self):
        events = fuzz_session("a", [1], finished=False) + \
            fuzz_session("b", [2])
        assert frontier_from_events(events)["active"] == 1

    def test_progress_updates_latest(self):
        events = [{"type": "fuzz.progress", "job": "j", "execs": 42,
                   "total": 100, "coverage_elements": 7, "corpus_size": 4,
                   "findings": 1, "execs_per_second": 10.0}]
        (session,) = frontier_from_events(events)["sessions"]
        assert session["latest"]["execs"] == 42
        assert not session["finished"]

    def test_thinning_keeps_last_point(self):
        coverage = list(range(1, 1001))
        frontier = frontier_from_events(fuzz_session("j", coverage),
                                        max_points=50)
        points = frontier["sessions"][0]["points"]
        assert len(points) == 50
        assert points[-1]["coverage_elements"] == 1000
        elements = [p["coverage_elements"] for p in points]
        assert elements == sorted(elements)


class TestRendering:
    def test_empty(self):
        assert "no fuzz sessions" in render_frontier({"sessions": []})

    def test_table(self):
        frontier = frontier_from_events(fuzz_session("job-9", [3, 5]))
        text = render_frontier(frontier)
        assert "job-9" in text
        assert "finished" in text
        assert "findings" in text
