"""TraceContext: minting, child derivation, wire round-trips."""

import pytest

from repro.observe import TraceContext


class TestMint:
    def test_mint_shapes(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None

    def test_mint_is_unique(self):
        seen = {TraceContext.mint().trace_id for _ in range(50)}
        assert len(seen) == 50

    def test_child_keeps_trace_links_parent(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        grandchild = child.child()
        assert grandchild.trace_id == root.trace_id
        assert grandchild.parent_id == child.span_id


class TestWireForm:
    def test_round_trip(self):
        root = TraceContext.mint().child()
        again = TraceContext.from_dict(root.to_dict())
        assert again == root
        assert hash(again) == hash(root)

    def test_fields_omit_missing_parent(self):
        root = TraceContext.mint()
        assert set(root.fields()) == {"trace_id", "span_id"}
        assert set(root.child().fields()) == {"trace_id", "span_id",
                                              "parent_id"}

    def test_rejects_unknown_fields(self):
        data = TraceContext.mint().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            TraceContext.from_dict(data)

    def test_rejects_empty_ids(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="", span_id="abc")
        with pytest.raises(ValueError):
            TraceContext(trace_id="abc", span_id=None)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            TraceContext.from_dict(["not", "a", "dict"])
