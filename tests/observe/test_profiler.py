"""Guest sampling profiler: attribution, ranking, exports."""

import json

import pytest

from repro.asm import assemble
from repro.isa.decoder import IsaConfig
from repro.observe import Profile, SamplingProfiler
from repro.vp.machine import Machine, MachineConfig

ISA = IsaConfig.from_string("rv32imc_zicsr")

# The hot path lives in `loop` (50 iterations per outer pass); `outer`
# and `start` are cold.
WORKLOAD = """
    .text
start:
    li   t0, 0
    li   t1, 40
outer:
    li   t2, 50
loop:
    addi t0, t0, 1
    addi t2, t2, -1
    bnez t2, loop
    addi t1, t1, -1
    bnez t1, outer
    li   a0, 0
    li   a7, 93
    ecall
"""


def run_profiled(source=WORKLOAD, interval=1):
    program = assemble(source, isa=ISA)
    machine = Machine(MachineConfig(isa=ISA))
    machine.load(program)
    profiler = machine.add_plugin(SamplingProfiler(interval=interval))
    result = machine.run(max_instructions=1_000_000)
    assert result.stop_reason == "exit"
    return profiler, program, result


class TestSampling:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)

    def test_exact_sampling_counts_every_block(self):
        profiler, _, result = run_profiled(interval=1)
        profile = profiler.profile()
        # interval=1 samples every block execution, so the estimate
        # matches the true retired count up to the tail of the final
        # block (the ecall exits before the block's insns all retire).
        delta = profile.total_est_instructions - result.instructions
        assert 0 <= delta < 32

    def test_interval_scales_estimates(self):
        exact, _, result = run_profiled(interval=1)
        sparse, _, _ = run_profiled(interval=10)
        estimate = sparse.profile().total_est_instructions
        # Unbiased within sampling error of the true count.
        assert estimate == pytest.approx(result.instructions, rel=0.15)
        assert sparse.total_samples < exact.total_samples

    def test_reset_clears_samples(self):
        profiler, _, _ = run_profiled()
        assert profiler.total_samples > 0
        profiler.reset()
        assert profiler.total_samples == 0


class TestAttribution:
    def test_hot_block_is_the_inner_loop(self):
        profiler, program, _ = run_profiled()
        profile = profiler.profile(program, isa=ISA)
        top = profile.hot_blocks(limit=1)[0]
        assert top["function"] == "loop"
        assert top["start_pc"] == program.symbols["loop"]
        assert top["fraction"] > 0.5

    def test_function_aggregation(self):
        profiler, program, _ = run_profiled()
        profile = profiler.profile(program, isa=ISA)
        rows = profile.functions()
        assert rows[0]["function"] == "loop"
        assert rows[0]["fraction"] > 0.5
        assert {row["function"] for row in rows} == \
            {"start", "outer", "loop"}
        assert sum(row["fraction"] for row in rows) == pytest.approx(1.0)

    def test_without_symbols_falls_back_to_hex(self):
        profiler, _, _ = run_profiled()
        profile = profiler.profile()  # no program -> no symbol table
        assert profile.hot_blocks(1)[0]["function"].startswith("0x")


class TestRenderings:
    def test_render_lists_functions_and_blocks(self):
        profiler, program, _ = run_profiled()
        text = profiler.profile(program, isa=ISA).render()
        assert "loop" in text
        assert "samples" in text
        assert "%" in text

    def test_annotated_disasm_shows_hot_instructions(self):
        profiler, program, _ = run_profiled()
        listing = profiler.profile(program, isa=ISA).annotated_disasm(1)
        assert "<loop>" in listing
        assert "addi" in listing
        assert "bne" in listing

    def test_annotated_disasm_without_isa(self):
        profiler, program, _ = run_profiled()
        profile = profiler.profile(program)
        assert "unavailable" in profile.annotated_disasm()


class TestExports:
    def test_collapsed_hottest_first(self):
        profiler, program, _ = run_profiled()
        lines = profiler.profile(program, isa=ISA).collapsed().splitlines()
        assert lines[0].startswith("loop;block_0x")
        weights = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert weights == sorted(weights, reverse=True)

    def test_save_collapsed_and_json(self, tmp_path):
        profiler, program, _ = run_profiled()
        profile = profiler.profile(program, isa=ISA)
        folded = tmp_path / "profile.folded"
        profile.save_collapsed(str(folded))
        assert folded.read_text().splitlines()[0].startswith("loop;")
        out = tmp_path / "profile.json"
        profile.save_json(str(out))
        data = json.loads(out.read_text())
        assert data["format"] == "repro-profile-v1"
        assert data["functions"][0]["function"] == "loop"
        assert data["total_samples"] == profile.total_samples

    def test_profile_restores_from_dict_blocks(self):
        profiler, program, _ = run_profiled()
        data = profiler.profile(program, isa=ISA).to_dict()
        rebuilt = Profile(blocks=data["blocks"], interval=data["interval"])
        assert rebuilt.total_est_instructions == \
            data["total_est_instructions"]


class TestTierAttribution:
    # 40-op load/store body -> two translation blocks chained by
    # fallthrough, which the compiled backend fuses into one trace.
    TRACE_WORKLOAD = """
    .text
start:
    la   s0, scratch
    li   t0, 0
    li   t1, 400
loop:
""" + "\n".join(
        f"    lw   t2, {(k % 8) * 4}(s0)\n"
        "    add  a0, a0, t2\n"
        "    xor  t2, t2, t0\n"
        f"    sw   t2, {(k % 8) * 4}(s0)"
        for k in range(10)) + """
    addi t0, t0, 1
    blt  t0, t1, loop
    li   a0, 0
    li   a7, 93
    ecall
    .data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""

    def _profile_compiled(self):
        program = assemble(self.TRACE_WORKLOAD, isa=ISA)
        machine = Machine(MachineConfig(isa=ISA, backend="compiled",
                                        jit_threshold=2,
                                        jit_trace_threshold=4))
        machine.load(program)
        profiler = machine.add_plugin(SamplingProfiler(interval=1))
        result = machine.run(max_instructions=1_000_000)
        assert result.stop_reason == "exit"
        assert machine.jit_stats()["traces_compiled"] >= 1
        return profiler.profile(program, isa=ISA)

    def test_trace_members_are_labelled_trace(self):
        profile = self._profile_compiled()
        tiers = {b["start_pc"]: b["tier"] for b in profile.blocks}
        trace_blocks = [pc for pc, tier in tiers.items()
                        if tier == "trace"]
        # The fused loop has a head and at least one member, and the
        # trace tier dominates the retired-instruction estimate.
        assert len(trace_blocks) >= 2, tiers
        by_tier = {}
        for block in profile.blocks:
            by_tier[block["tier"]] = (by_tier.get(block["tier"], 0)
                                      + block["est_instructions"])
        assert by_tier["trace"] > by_tier.get("interp", 0), by_tier

    def test_render_shows_trace_tier_column(self):
        profile = self._profile_compiled()
        assert " trace" in profile.render()
