"""The `repro top` building blocks: quantiles, rendering, polling."""

import io

import pytest

from repro.observe import (ServiceStatus, fetch_status,
                           quantile_from_buckets, render_top)
from repro.observe import top as top_module


def buckets(series):
    """{le: cumulative} -> the parse_prometheus label-tuple mapping."""
    return {(("le", le),): count for le, count in series.items()}


class TestQuantileFromBuckets:
    def test_empty(self):
        assert quantile_from_buckets({}, 0.5) is None
        assert quantile_from_buckets(buckets({"1": 0, "+Inf": 0}),
                                     0.5) is None

    def test_interpolates_inside_bucket(self):
        series = buckets({"1": 0, "2": 10, "+Inf": 10})
        # All 10 observations sit in (1, 2]; p50 lands mid-bucket.
        assert quantile_from_buckets(series, 0.5) == pytest.approx(1.5)

    def test_p99_beyond_last_finite_bound(self):
        series = buckets({"1": 99, "+Inf": 100})
        # Observations past the last finite bucket clamp to its bound.
        assert quantile_from_buckets(series, 0.999) == pytest.approx(1.0)

    def test_unordered_input(self):
        series = buckets({"+Inf": 10, "1": 5, "0.5": 0})
        assert quantile_from_buckets(series, 0.5) == pytest.approx(1.0)


def make_status(**overrides):
    health = {"status": "ok", "workers": 4, "running": 1, "mode": "thread",
              "queue_depth": 2, "queue_limit": 64,
              "jobs": {"pending": 2, "running": 1, "succeeded": 7,
                       "failed": 0, "cancelled": 0, "timeout": 0}}
    metrics = {
        "repro_serve_submitted_total": {(): 10.0},
        "repro_serve_rejected_total": {(): 1.0},
        "repro_events_dropped": {(): 0.0},
        "repro_serve_queue_wait_seconds_bucket":
            buckets({"0.001": 5, "+Inf": 10}),
    }
    frontier = {"sessions": [], "active": 0}
    events = [{"type": "job.finished", "ts_us": 1_000_000, "id": "job-7"}]
    fields = dict(health=health, metrics=metrics, frontier=frontier,
                  events=events)
    fields.update(overrides)
    return ServiceStatus(**fields)


class TestRenderTop:
    def test_renders_all_sections(self):
        text = render_top(make_status(), url="http://x")
        assert "workers 1/4 busy" in text
        assert "succeeded:7" in text
        assert "submitted:10" in text
        assert "fuzz frontier" in text
        assert "job.finished" in text
        assert "job-7" in text

    def test_error_status(self):
        status = ServiceStatus({}, {}, {}, [], error="conn refused")
        assert "cannot reach service" in render_top(status)

    def test_missing_metrics_render_as_zero(self):
        text = render_top(make_status(metrics={}))
        assert "submitted:0" in text

    def test_plain_serve_has_no_cluster_section(self):
        assert "--- cluster ---" not in render_top(make_status())

    def test_cluster_section_renders_node_rows(self):
        health = dict(make_status().health)
        health["mode"] = "cluster"
        health["cluster"] = {
            "nodes": [{"id": "node-1", "name": "alpha", "draining": False,
                       "capacity": 1, "heartbeat_age_seconds": 0.4,
                       "stats": {"executed": 12, "failed": 1,
                                 "busy": True}},
                      {"id": "node-2", "name": "beta", "draining": True,
                       "capacity": 2, "heartbeat_age_seconds": 1.1,
                       "stats": {}}],
            "work": {"pending": 3, "leased": 2, "done": 40, "failed": 0},
            "work_requeued": 1,
            "nodes_lost": 1,
        }
        text = render_top(make_status(health=health))
        assert "--- cluster ---" in text
        assert "pending:3" in text and "requeued:1" in text
        assert "node-1" in text and "alpha" in text
        assert "exec:12" in text
        assert "draining" in text  # node-2's state
        assert "live" in text      # node-1's state

    def test_cluster_section_with_no_nodes(self):
        health = dict(make_status().health)
        health["cluster"] = {"nodes": [], "work": {}}
        text = render_top(make_status(health=health))
        assert "(none attached)" in text


class TestFetchStatus:
    def test_unreachable_becomes_error_status(self):
        status = fetch_status("http://127.0.0.1:1", timeout=0.5)
        assert status.error is not None
        assert status.events == []


class TestRunTop:
    def test_polls_and_advances_cursor(self, monkeypatch):
        calls = []

        def fake_fetch(url, since=0, timeout=5.0):
            calls.append(since)
            return make_status(events_cursor=since + 3)

        monkeypatch.setattr(top_module, "fetch_status", fake_fetch)
        out = io.StringIO()
        code = top_module.run_top("http://x", interval=0, iterations=3,
                                  out=out, sleep=lambda _: None)
        assert code == 0
        assert calls == [0, 3, 6]
        assert out.getvalue().count("repro top") == 3

    def test_error_exit_code(self, monkeypatch):
        monkeypatch.setattr(
            top_module, "fetch_status",
            lambda url, since=0, timeout=5.0: ServiceStatus(
                {}, {}, {}, [], since, error="down"))
        code = top_module.run_top("http://x", interval=0, iterations=1,
                                  out=io.StringIO(), sleep=lambda _: None)
        assert code == 1
