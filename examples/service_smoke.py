#!/usr/bin/env python3
"""End-to-end smoke test for the batch simulation service.

Starts ``repro serve`` as a real subprocess, submits a fault-injection
campaign over HTTP, polls it to completion, and asserts that the
classification counts are byte-identical to running the same campaign
directly through :class:`repro.faultsim.FaultCampaign`.  Used by CI
(service-smoke job) and runnable by hand:

    python examples/service_smoke.py

Exits 0 on success, non-zero on any mismatch or timeout.  The whole run
is bounded by HARD_TIMEOUT so a wedged server cannot hang CI.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

HARD_TIMEOUT = 180.0          # seconds for the entire smoke run
PORT = int(os.environ.get("SMOKE_PORT", "18972"))
MUTANTS = 30
SEED = 7
WORKLOAD_SEED = 21


def direct_counts(source):
    """Reference classification: the library path, no service involved."""
    from repro.asm import assemble
    from repro.faultsim import FaultCampaign, default_campaign_mutants
    from repro.isa import RV32IMC_ZICSR

    program = assemble(source, isa=RV32IMC_ZICSR)
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    faults = default_campaign_mutants(
        program, isa=RV32IMC_ZICSR, mutants=MUTANTS, seed=SEED,
        golden_instructions=golden.instructions)
    result = campaign.run(faults)
    data = result.to_dict()
    data.pop("elapsed_seconds")
    return result.counts, json.dumps(data, sort_keys=True)


def wait_for_health(client, deadline):
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return True
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    return False


def main():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.serve.client import ServiceClient
    from repro.testgen import StructuredGenerator

    deadline = time.monotonic() + HARD_TIMEOUT
    source = StructuredGenerator(statements=5).generate(WORKLOAD_SEED).source
    expected_counts, expected_json = direct_counts(source)
    print(f"direct run: {expected_counts}")

    env = dict(os.environ, PYTHONPATH=os.path.join(
        os.path.dirname(__file__), "..", "src"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServiceClient(f"http://127.0.0.1:{PORT}", timeout=10)
    try:
        if not wait_for_health(client, deadline):
            raise SystemExit("server never became healthy")

        job = client.submit(
            "fault_campaign",
            {"source": source, "mutants": MUTANTS, "seed": SEED})
        print(f"submitted job {job['id']}")

        remaining = deadline - time.monotonic()
        done = client.wait(job["id"], timeout=max(1.0, remaining),
                           poll_interval=0.5)
        if done["state"] != "succeeded":
            raise SystemExit(f"job finished in state {done['state']}: "
                             f"{done.get('error')}")

        counts = done["result"]["counts"]
        print(f"service run: {counts}")
        if counts != expected_counts:
            raise SystemExit(
                f"classification mismatch: {counts} != {expected_counts}")

        campaign = dict(done["result"]["campaign"])
        campaign.pop("elapsed_seconds")
        if json.dumps(campaign, sort_keys=True) != expected_json:
            raise SystemExit("campaign result not byte-identical to direct run")

        client.shutdown(drain=True)
        server.wait(timeout=max(1.0, deadline - time.monotonic()))
        print("smoke test passed: service result byte-identical to direct run")
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    main()
