#!/usr/bin/env python3
"""XEMU-style binary mutation testing: grading test quality.

Mutates a self-checking binary bit-by-bit and measures which mutants the
embedded checks kill.  A strong test (dense compares) scores high; a weak
oracle (checksum only) lets many mutants survive.  Survivors are listed
with their disassembly context — the actionable output for a verification
engineer.

Run with:  python examples/mutation_testing.py
"""

from repro.asm import assemble
from repro.faultsim import run_mutation_testing
from repro.isa import Decoder, RV32IMC_ZICSR, disassemble
from repro.testgen import UnitSuiteGenerator

WEAK = """
# Weak oracle: computes a sum but only checks that it is nonzero.
_start:
    li t0, 0
    li t1, 1
loop:
    add t0, t0, t1
    addi t1, t1, 1
    li t2, 9
    ble t1, t2, loop
    beqz t0, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"""


def survivors_with_context(program, report, limit=5):
    decoder = Decoder(RV32IMC_ZICSR)
    lines = []
    for outcome in report.survivors[:limit]:
        fault = outcome.fault
        # Show the instruction containing the mutated byte.
        addr, blob = program.text_segment
        offset = (fault.index - addr) & ~3
        word = int.from_bytes(blob[offset:offset + 4], "little")
        try:
            text = disassemble(decoder.decode(word))
        except Exception:
            text = f".word {word:#x}"
        lines.append(f"  {fault.describe():<42} in `{text}`")
    return "\n".join(lines)


def main() -> None:
    print("=== weak oracle (sum != 0) ===")
    weak_program = assemble(WEAK, isa=RV32IMC_ZICSR)
    weak = run_mutation_testing(weak_program, isa=RV32IMC_ZICSR,
                                sample=None)
    print(weak.table())
    print(f"\nexample surviving mutants ({len(weak.survivors)} total):")
    print(survivors_with_context(weak_program, weak))

    print("\n=== generated unit tests (dense checks) ===")
    name, unit_program = UnitSuiteGenerator(RV32IMC_ZICSR).generate()[0]
    unit = run_mutation_testing(unit_program, isa=RV32IMC_ZICSR, sample=200)
    print(f"program: {name}")
    print(unit.table())

    print(f"\nmutation score: weak oracle {weak.score:.1%} vs "
          f"unit tests {unit.score:.1%}")
    assert unit.score > weak.score


if __name__ == "__main__":
    main()
