#!/usr/bin/env python3
"""Cache-aware WCET analysis: miss-always vs. loop persistence.

Configures an instruction cache on both the VP and the static analysis,
then shows the three analysis levels on a hot loop:

1. no cache model — tight but ignores fetch latency,
2. miss-always   — sound with the cache, wildly pessimistic on loops,
3. persistence   — loops that fit the cache are charged once per entry.

Run with:  python examples/cache_wcet.py
"""

from repro.vp import ICacheConfig
from repro.wcet import analyze_program

PROGRAM = """
_start:
    li t0, 0
    li t1, 150
    li a0, 0
hot:                   # @loopbound 150
    add a0, a0, t0
    xor a0, a0, t1
    addi t0, t0, 1
    blt t0, t1, hot
    li a7, 93
    ecall
"""

CACHE = ICacheConfig(size=1024, line_size=16, ways=2, miss_penalty=10)


def main() -> None:
    modes = [
        ("no cache model", {}),
        ("miss-always", {"icache": CACHE}),
        ("persistence", {"icache": CACHE, "cache_analysis": True}),
        ("persistence + edge-sensitive",
         {"icache": CACHE, "cache_analysis": True, "edge_sensitive": True}),
    ]
    header = (f"{'analysis mode':<30} {'static bound':>13} {'QTA path':>10} "
              f"{'actual':>8} {'pessimism':>10}")
    print(header)
    print("-" * len(header))
    for label, kwargs in modes:
        analysis = analyze_program(PROGRAM, name="hot-loop", **kwargs)
        bound = analysis.static_bound.cycles
        actual = analysis.result.actual_cycles
        print(f"{label:<30} {bound:>13} {analysis.result.wcet_time:>10} "
              f"{actual:>8} {bound / actual:>9.2f}x")
        assert bound >= analysis.result.wcet_time >= actual

    print(
        "\nreading: with the cache on the VP, the sound miss-always bound "
        "explodes on the hot loop;\nthe persistence analysis proves the "
        "loop cannot evict its own lines and recovers the\npessimism — "
        "charging the fill once per loop entry instead of per iteration."
    )


if __name__ == "__main__":
    main()
