#!/usr/bin/env python3
"""Bounded end-to-end smoke test for the differential verification
subsystem — the CI gate behind ``make verify-smoke``.

Two phases, both required:

1. **Clean matrix** — a seeded 20-program Torture corpus runs under the
   ``interp~compiled`` pair (the tier boundary where semantics drift
   lives) and must produce **zero divergences**: the execution backends
   are each other's reference models.
2. **Seeded-bug canary** — the same campaign re-runs with a deliberate
   cross-tier bug injected (``add``'s ``execute`` function perturbed
   while the JIT emitter stays faithful — exactly the hazard
   ``repro.isa.semantics`` documents).  The campaign must *catch* it
   (digest divergence), *pinpoint* it (lockstep escalation names the
   perturbed instruction), and *minimize* the witness while preserving
   the divergence signature.  A verification subsystem whose failure
   mode is silence needs its own canary.

Runs in well under a minute; CI wraps it in ``timeout`` as a backstop.

    python examples/verify_smoke.py

Exits 0 on success, non-zero on any violated assertion.
"""

import sys
import time

PROGRAMS = 20
SEED = 7
MAX_INSTRUCTIONS = 3000


def main() -> int:
    from repro.isa import RV32IMC_ZICSR
    from repro.verify import DiffCampaign, VerifyCampaignConfig
    from repro.verify.canary import perturbed_semantics

    config = VerifyCampaignConfig(
        corpus=f"torture:{PROGRAMS}", matrix="interp:compiled",
        seed=SEED, max_instructions=MAX_INSTRUCTIONS)
    started = time.monotonic()

    # -- 1. clean matrix: zero divergences --------------------------------
    clean = DiffCampaign(RV32IMC_ZICSR, config).run()
    print(clean.table())
    print()
    assert clean.divergences == 0, \
        f"clean corpus diverged: {clean.to_dict()['findings']}"
    report = clean.to_dict()
    assert report["programs"] == PROGRAMS
    assert report["comparisons"] == PROGRAMS
    print(f"clean: {report['comparisons']} comparisons, 0 divergences "
          f"({time.monotonic() - started:.1f}s)")
    print()

    # -- 2. seeded-bug canary: caught, pinpointed, minimized --------------
    with perturbed_semantics(RV32IMC_ZICSR, mnemonic="add"):
        canary = DiffCampaign(RV32IMC_ZICSR, config).run()
    print(canary.table())
    print()
    assert canary.divergences > 0, \
        "canary NOT caught: a cross-tier semantics bug went undetected"
    findings = canary.to_dict()["findings"]
    assert findings, "divergences did not fold into triage findings"
    finding = findings[0]
    assert finding["lockstep_clean"] is False, \
        "lockstep escalation did not confirm the divergence"
    assert finding["kind"] == "registers", finding
    assert finding["signature"].endswith(":add"), \
        f"lockstep blamed the wrong instruction: {finding['signature']}"
    assert finding["disasm"].split()[0] == "add", finding["disasm"]
    minimized = finding["words"]          # triage stores the word count
    assert 0 < minimized < finding["minimized_from"], \
        "witness was not minimized"
    print(f"canary: caught as {finding['signature']!r} at pc "
          f"{finding['pc']:#x} ({finding['disasm']}), witness minimized "
          f"{finding['minimized_from']} -> {minimized} words")

    # -- 3. the perturbation did not leak ---------------------------------
    recheck = DiffCampaign(RV32IMC_ZICSR, VerifyCampaignConfig(
        corpus="torture:3", matrix="interp:compiled", seed=SEED,
        max_instructions=MAX_INSTRUCTIONS)).run()
    assert recheck.divergences == 0, "canary perturbation leaked"

    print(f"\nverify smoke OK ({time.monotonic() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
