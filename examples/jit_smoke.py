#!/usr/bin/env python3
"""Bounded end-to-end smoke test for the compiled execution tier.

Runs the F1 compute workload under the ``compiled`` backend and asserts
the properties CI cares about:

* the JIT actually engaged — blocks were compiled and the bulk of the
  instructions retired in the compiled tier (a silent fall-back to the
  interpreter fails the job loudly);
* the :class:`RunResult` (stop reason, exit code, instruction and cycle
  counts) and the final architectural state are byte-identical to the
  ``interp`` backend on the same program;
* the compiled tier is at least ``MIN_SPEEDUP``x faster than the
  interpreter backend on this workload (best-of-N each, interleaved) —
  a deliberately loose floor so host jitter cannot flake the job while
  a real regression still trips it.

Used by the CI ``jit-smoke`` job and runnable by hand:

    python examples/jit_smoke.py

Exits 0 on success, non-zero on any violated assertion.  The workload
is instruction-bounded; CI wraps the script in ``timeout`` as well.
"""

import sys
import time

ITERS = 20_000        # F1 loop iterations (~200k dynamic instructions)
REPEATS = 3           # best-of-N per backend
MIN_SPEEDUP = 2.0     # loose floor; the recorded number is far higher

WORKLOAD = f"""
_start:
    li t0, 0
    li t1, {ITERS}
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""


def main() -> int:
    from repro.asm import assemble
    from repro.isa import RV32IMC_ZICSR
    from repro.vp import Machine, MachineConfig

    program = assemble(WORKLOAD, isa=RV32IMC_ZICSR)

    def one(backend):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR, backend=backend))
        machine.load(program)
        start = time.perf_counter()
        result = machine.run(max_instructions=50_000_000)
        elapsed = time.perf_counter() - start
        digest = (tuple(machine.cpu.regs.snapshot()), machine.cpu.pc,
                  machine.cpu.csrs.instret, machine.cpu.csrs.cycle)
        return result, digest, elapsed, machine.jit_stats()

    best = {}
    outcome = {}
    for _ in range(REPEATS):
        for backend in ("interp", "compiled"):
            result, digest, elapsed, stats = one(backend)
            assert result.stop_reason == "exit", result.stop_reason
            best[backend] = min(best.get(backend, float("inf")), elapsed)
            outcome[backend] = (result, digest)
            if backend == "compiled":
                jit_stats = stats

    # 1. the JIT engaged — no silent interpreter fall-back.
    assert jit_stats is not None, "compiled backend reported no JIT stats"
    assert jit_stats["blocks_compiled"] >= 1, jit_stats
    assert jit_stats["compiled_instructions"] > \
        jit_stats["interp_instructions"], (
        f"bulk of instructions retired outside the compiled tier: "
        f"{jit_stats}")
    assert jit_stats["compile_failures"] == 0, jit_stats

    # 2. byte-identical results.
    assert outcome["compiled"] == outcome["interp"], (
        f"compiled tier diverged from the interpreter:\n"
        f"  interp:   {outcome['interp']}\n"
        f"  compiled: {outcome['compiled']}")

    # 3. the speedup floor.
    speedup = best["interp"] / best["compiled"]
    insns = outcome["compiled"][0].instructions
    print(f"jit smoke: {insns:,} instructions  "
          f"interp {insns / best['interp'] / 1e6:.2f} MIPS  "
          f"compiled {insns / best['compiled'] / 1e6:.2f} MIPS  "
          f"speedup {speedup:.2f}x  "
          f"({jit_stats['blocks_compiled']} blocks compiled)")
    assert speedup >= MIN_SPEEDUP, (
        f"compiled tier only {speedup:.2f}x vs interp "
        f"(floor {MIN_SPEEDUP}x)")
    print("jit smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
