#!/usr/bin/env python3
"""Bounded end-to-end smoke test for the compiled execution tier.

Two phases, each comparing the ``compiled`` backend against ``interp``
on the same program and asserting the properties CI cares about:

**Phase 1 — F1 compute loop:**

* the JIT actually engaged — blocks were compiled and the bulk of the
  instructions retired in the compiled tier (a silent fall-back to the
  interpreter fails the job loudly);
* the :class:`RunResult` (stop reason, exit code, instruction and cycle
  counts) and the final architectural state are byte-identical to the
  ``interp`` backend on the same program;
* the compiled tier is at least ``MIN_SPEEDUP``x faster than the
  interpreter backend on this workload (best-of-N each, interleaved) —
  a deliberately loose floor so host jitter cannot flake the job while
  a real regression still trips it.

**Phase 2 — F5 memory loop (multi-block, load/store heavy):**

* at least one cross-block trace compiled, with instructions retired
  in it;
* the RAM fast path engaged on both backends (non-zero hit rate);
* RunResult, architectural state, dirty-page set, and the memory
  access counters are byte-identical to ``interp``.

Used by the CI ``jit-smoke`` job and runnable by hand:

    python examples/jit_smoke.py

Exits 0 on success, non-zero on any violated assertion.  The workloads
are instruction-bounded; CI wraps the script in ``timeout`` as well.
"""

import sys
import time

ITERS = 20_000        # F1 loop iterations (~200k dynamic instructions)
MEM_ITERS = 3_000     # F5 loop iterations (~126k dynamic instructions)
REPEATS = 3           # best-of-N per backend
MIN_SPEEDUP = 2.0     # loose floor; the recorded number is far higher

WORKLOAD = f"""
_start:
    li t0, 0
    li t1, {ITERS}
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""

# Load/store-dense loop whose 40-op body splits into two translation
# blocks — the compiled tier must fuse them into one trace to win.
MEM_WORKLOAD = f"""
_start:
    la s0, scratch
    li t0, 0
    li t1, {MEM_ITERS}
    li a0, 0
loop:
""" + "\n".join(
    f"    lw t2, {(k % 8) * 4}(s0)\n"
    "    add a0, a0, t2\n"
    "    xor t2, t2, t0\n"
    f"    sw t2, {(k % 8) * 4}(s0)"
    for k in range(10)) + """
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""


def _measure(program, repeats=REPEATS):
    """Interleaved best-of-N runs of ``program`` per backend."""
    from repro.isa import RV32IMC_ZICSR
    from repro.vp import Machine, MachineConfig

    best = {}
    outcome = {}
    extras = {}
    for _ in range(repeats):
        for backend in ("interp", "compiled"):
            machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                            backend=backend))
            machine.load(program)
            start = time.perf_counter()
            result = machine.run(max_instructions=50_000_000)
            elapsed = time.perf_counter() - start
            assert result.stop_reason == "exit", result.stop_reason
            digest = (tuple(machine.cpu.regs.snapshot()), machine.cpu.pc,
                      machine.cpu.csrs.instret, machine.cpu.csrs.cycle)
            best[backend] = min(best.get(backend, float("inf")), elapsed)
            outcome[backend] = (result, digest, machine.mem_stats(),
                                tuple(sorted(machine.ram.dirty_pages())))
            extras[backend] = machine.jit_stats()
    return best, outcome, extras


def compute_phase() -> None:
    from repro.asm import assemble
    from repro.isa import RV32IMC_ZICSR

    program = assemble(WORKLOAD, isa=RV32IMC_ZICSR)
    best, outcome, extras = _measure(program)
    jit_stats = extras["compiled"]

    # 1. the JIT engaged — no silent interpreter fall-back.
    assert jit_stats is not None, "compiled backend reported no JIT stats"
    assert jit_stats["blocks_compiled"] >= 1, jit_stats
    assert jit_stats["compiled_instructions"] > \
        jit_stats["interp_instructions"], (
        f"bulk of instructions retired outside the compiled tier: "
        f"{jit_stats}")
    assert jit_stats["compile_failures"] == 0, jit_stats

    # 2. byte-identical results.
    assert outcome["compiled"] == outcome["interp"], (
        f"compiled tier diverged from the interpreter:\n"
        f"  interp:   {outcome['interp']}\n"
        f"  compiled: {outcome['compiled']}")

    # 3. the speedup floor.
    speedup = best["interp"] / best["compiled"]
    insns = outcome["compiled"][0].instructions
    print(f"jit smoke [compute]: {insns:,} instructions  "
          f"interp {insns / best['interp'] / 1e6:.2f} MIPS  "
          f"compiled {insns / best['compiled'] / 1e6:.2f} MIPS  "
          f"speedup {speedup:.2f}x  "
          f"({jit_stats['blocks_compiled']} blocks compiled)")
    assert speedup >= MIN_SPEEDUP, (
        f"compiled tier only {speedup:.2f}x vs interp "
        f"(floor {MIN_SPEEDUP}x)")


def memory_phase() -> None:
    from repro.asm import assemble
    from repro.isa import RV32IMC_ZICSR

    program = assemble(MEM_WORKLOAD, isa=RV32IMC_ZICSR)
    best, outcome, extras = _measure(program)
    jit_stats = extras["compiled"]

    # 1. the trace tier engaged on the multi-block loop.
    assert jit_stats["traces_compiled"] >= 1, jit_stats
    assert jit_stats["trace_instructions"] > 0, jit_stats
    assert jit_stats["trace_failures"] == 0, jit_stats

    # 2. the RAM fast path engaged on both backends.
    for backend in ("interp", "compiled"):
        mem = outcome[backend][2]
        assert mem["fastpath_hit_rate"] > 0, (backend, mem)

    # 3. byte-identical results, including memory observables (access
    # counters and the dirty-page set).
    assert outcome["compiled"] == outcome["interp"], (
        f"trace tier diverged from the interpreter:\n"
        f"  interp:   {outcome['interp']}\n"
        f"  compiled: {outcome['compiled']}")

    insns = outcome["compiled"][0].instructions
    mem = outcome["compiled"][2]
    print(f"jit smoke [memory]:  {insns:,} instructions  "
          f"interp {insns / best['interp'] / 1e6:.2f} MIPS  "
          f"compiled {insns / best['compiled'] / 1e6:.2f} MIPS  "
          f"speedup {best['interp'] / best['compiled']:.2f}x  "
          f"({jit_stats['traces_compiled']} traces, "
          f"fastpath hit rate {mem['fastpath_hit_rate']:.3f})")


def main() -> int:
    compute_phase()
    memory_phase()
    print("jit smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
