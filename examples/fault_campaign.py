#!/usr/bin/env python3
"""Coverage-guided fault-effect simulation campaign.

Generates a structured program (the "compiled C" substitute), measures its
coverage, samples a coverage-guided mutant population (code bitflips,
register and memory faults, transient and permanent), simulates every
mutant, and prints the outcome classification — the cases that *terminate
normally on faulty hardware* are the ones the Scale4Edge platform flags
for safety-countermeasure work.

Run with:  python examples/fault_campaign.py
"""

from repro.coverage import measure_coverage
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator


def main() -> None:
    generated = StructuredGenerator().generate(seed=42)
    print(f"workload: {generated.name}, "
          f"expected checksum {generated.expected_checksum:#010x}")

    campaign = FaultCampaign(generated.program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    print(f"golden run: exit {golden.exit_code:#x}, "
          f"{golden.instructions} instructions, {golden.cycles} cycles\n")

    coverage = measure_coverage(generated.program, isa=RV32IMC_ZICSR)
    print(f"coverage guidance: {len(coverage.gprs_accessed)} GPRs accessed, "
          f"{len(coverage.mem_read_addrs | coverage.mem_written_addrs)} "
          f"data bytes touched\n")

    budget = MutantBudget(code=60, gpr_transient=60, gpr_stuck=30,
                          memory_transient=20, memory_stuck=10)
    faults = generate_mutants(generated.program, coverage, budget,
                              golden_instructions=golden.instructions,
                              seed=1)
    print(f"simulating {len(faults)} mutants ...")
    result = campaign.run(faults)
    print(result.table())
    print(f"\nnormal-termination fraction (masked + sdc): "
          f"{result.normal_termination_fraction:.1%}")

    print("\nexample silent-data-corruption mutants:")
    for mutant in result.of_outcome("sdc")[:5]:
        print(f"  {mutant.fault.describe():<50} -> exit "
              f"{mutant.exit_code:#x}")


if __name__ == "__main__":
    main()
