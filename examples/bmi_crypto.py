#!/usr/bin/env python3
"""BMI extension evaluation on crypto/bit-manipulation kernels.

Registers the ten-instruction BMI module (``Zbb``) with the decoder, runs
six kernels in baseline (RV32IM-only) and BMI variants, checks checksum
equivalence, and reports dynamic instruction counts, cycles, and speedups
— the software-evaluation table of the BMI companion paper.

Run with:  python examples/bmi_crypto.py
"""

from repro.bmi import KERNELS, evaluate_all, table
from repro.core import sensor_node_demo


def main() -> None:
    print("kernels under evaluation:")
    for kernel in KERNELS:
        print(f"  {kernel.name:<15} {kernel.description}")
    print()

    comparisons = evaluate_all()
    print(table(comparisons))

    total_base = sum(row.baseline_cycles for row in comparisons)
    total_bmi = sum(row.bmi_cycles for row in comparisons)
    print(f"\noverall: {total_base} -> {total_bmi} cycles "
          f"({total_base / total_bmi:.2f}x)")

    best = max(comparisons, key=lambda row: row.cycle_speedup)
    print(f"largest win: {best.name} at {best.cycle_speedup:.2f}x "
          f"(single-instruction replacement of a software loop)")

    # Every pair is checksum-equivalent by construction; make it explicit.
    for row in comparisons:
        print(f"  {row.name:<15} checksum {row.checksum:#010x} "
              f"(baseline == BMI)")


if __name__ == "__main__":
    main()
