#!/usr/bin/env python3
"""Software fault-tolerance countermeasures under fault pressure.

Closes the loop the fault-analysis platform opens: the campaign flags
silent-data-corruption cases; this example shows what the recommended
countermeasures buy.  The same transient register-fault population is
applied to an unprotected checksum kernel, a duplication-with-comparison
(DWC) variant, and a TMR variant.

Run with:  python examples/fault_tolerance.py
"""

from repro.asm import assemble
from repro.faultsim.countermeasures import (
    VARIANTS,
    evaluate_countermeasures,
    table,
)
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig


def main() -> None:
    print("hardening variants and their cost:")
    for name, source in VARIANTS.items():
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(assemble(source, isa=RV32IMC_ZICSR))
        result = machine.run(max_instructions=100_000)
        print(f"  {name:<14} {result.instructions:>5} instructions, "
              f"checksum {result.exit_code:#x}")

    print("\nfault verdicts under 150 transient register flips each:")
    results = evaluate_countermeasures(mutants=150, seed=1)
    print(table(results))

    print(
        "\nreading: DWC converts silent corruption into detections; "
        "TMR removes it entirely\n(corrected runs appear as benign — the "
        "result matches the fault-free reference)."
    )


if __name__ == "__main__":
    main()
