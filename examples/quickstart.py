#!/usr/bin/env python3
"""Quickstart: assemble a bare-metal RISC-V program, run it on the virtual
prototype, and inspect the results.

Run with:  python examples/quickstart.py
"""

from repro.core import Ecosystem

SOURCE = """
# Print a greeting over the UART, then compute 10! and exit with
# (10! mod 100) as the exit code.
.equ UART, 0x10000000

_start:
    la a1, greeting
    li t0, UART
print:                  # @loopbound 32
    lbu t1, 0(a1)
    beqz t1, compute
    sb t1, 0(t0)
    addi a1, a1, 1
    j print

compute:
    li a0, 1            # accumulator
    li t0, 1            # counter
    li t1, 10
factorial:              # @loopbound 10
    mul a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, factorial

    li t2, 100
    remu a0, a0, t2
    li a7, 93           # exit(a0)
    ecall

.data
greeting: .asciz "hello from the Scale4Edge VP!\\n"
"""


def main() -> None:
    # An ecosystem bundles one ISA configuration with every tool.
    eco = Ecosystem.for_isa("rv32imc_zicsr")

    # Assemble to a program image (labels, pseudo-instructions, sections).
    program = eco.build(SOURCE)
    print(f"assembled {program.total_size} bytes, "
          f"entry {program.entry:#010x}, isa {program.isa_name}")

    # Run on the full-system VP (CPU + RAM + UART + CLINT + exit device).
    machine, result = eco.run(program)
    print(f"UART output: {machine.uart.output!r}")
    print(f"stop reason: {result.stop_reason}")
    print(f"exit code:   {result.exit_code}  (10! mod 100 = 28800 mod 100)")
    print(f"instructions: {result.instructions}, cycles: {result.cycles}")

    # The translation-block engine caches decoded blocks like QEMU.
    print(f"TB cache: {machine.cpu.tb_hits} hits, "
          f"{machine.cpu.tb_misses} misses")

    assert result.exit_code == 28800 % 100


if __name__ == "__main__":
    main()
