#!/usr/bin/env python3
"""Suite coverage audit: the instruction/register coverage comparison.

Generates the three test suites the Scale4Edge coverage analysis compares
(architectural-style directed tests, riscv-tests-style unit tests, and
Torture-style random programs), measures instruction-type and GPR/FPR/CSR
coverage for each, and shows that only the *combined* suite closes the
register-coverage gap — the headline result of the coverage paper.

Run with:  python examples/coverage_audit.py
"""

from repro.coverage import measure_suite
from repro.isa import RV32IMCF_ZICSR
from repro.testgen import (
    ArchSuiteGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)

ISA = RV32IMCF_ZICSR


def main() -> None:
    print(f"ISA configuration: {ISA.name}\n")

    arch = ArchSuiteGenerator(ISA).generate()
    unit = UnitSuiteGenerator(ISA).generate()
    torture = TortureGenerator(
        ISA, TortureConfig(length=500)).generate_suite(3)

    suites = {
        "architectural": arch,
        "unit-tests": unit,
        "torture": torture,
    }
    unions = {}
    for name, programs in suites.items():
        coverage = measure_suite(programs, isa=ISA,
                                 max_instructions=200_000)
        unions[name] = coverage.union

    combined = unions["architectural"] | unions["unit-tests"] \
        | unions["torture"]

    header = (f"{'suite':<16} {'programs':>9} {'insn types':>12} "
              f"{'GPR':>8} {'FPR':>8} {'CSR':>8}")
    print(header)
    print("-" * len(header))
    for name, programs in suites.items():
        u = unions[name]
        print(f"{name:<16} {len(programs):>9} {u.insn_coverage:>11.1%} "
              f"{u.gpr_coverage:>7.1%} {u.fpr_coverage:>7.1%} "
              f"{u.csr_coverage:>7.1%}")
    total = sum(len(p) for p in suites.values())
    print(f"{'combined':<16} {total:>9} {combined.insn_coverage:>11.1%} "
          f"{combined.gpr_coverage:>7.1%} {combined.fpr_coverage:>7.1%} "
          f"{combined.csr_coverage:>7.1%}")

    print("\nper-module instruction-type coverage of the combined suite:")
    for module, (hit, total) in combined.module_breakdown().items():
        print(f"  {module:<6} {hit}/{total}")

    missing = combined.missed_insn_types()
    if missing:
        print(f"\nstill uncovered: {missing}")
    else:
        print("\nevery instruction type of the configuration is covered.")


if __name__ == "__main__":
    main()
