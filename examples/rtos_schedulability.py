#!/usr/bin/env python3
"""End-to-end real-time story: QTA WCETs feeding schedulability analysis.

Three firmware kernels are analyzed with the QTA flow; their *static WCET
bounds* become the task WCETs of a periodic task set, which the abstract
RTOS model then checks analytically (response-time analysis) and by
hyperperiod simulation.  The schedulability verdict inherits the soundness
of the WCET chain — the whole point of combining the tools in one
ecosystem.

Run with:  python examples/rtos_schedulability.py
"""

from repro.rtos import analyze_taskset, taskset_from_wcet_analyses
from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

KERNELS = {
    "sensor-filter": """
_start:
    li t0, 0
    li t1, 16
    li a0, 0
f:                 # @loopbound 16
    add a0, a0, t0
    srai t2, a0, 3
    sub a0, a0, t2
    addi t0, t0, 1
    blt t0, t1, f
""" + EXIT,

    "crc-frame": """
_start:
    la s0, frame
    li s1, 8
    li a0, 0
byte:              # @loopbound 8
    lbu t0, 0(s0)
    xor a0, a0, t0
    li t1, 8
bit:               # @loopbound 8
    andi t2, a0, 0x80
    slli a0, a0, 1
    andi a0, a0, 0xFF
    beqz t2, nx
    xori a0, a0, 0x07
nx:
    addi t1, t1, -1
    bnez t1, bit
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, byte
""" + EXIT + """
.data
frame: .ascii "payload!"
""",

    "actuator-pid": """
_start:
    li s0, 0           # integral
    li s1, 37          # setpoint
    li s2, 20          # measurement
    li t0, 0
    li t1, 4
pid:               # @loopbound 4
    sub t2, s1, s2     # error
    add s0, s0, t2
    slli t3, t2, 2     # P
    srai t4, s0, 1     # I
    add a0, t3, t4
    addi s2, s2, 3     # plant response
    addi t0, t0, 1
    blt t0, t1, pid
""" + EXIT,
}

#: Activation periods in CPU cycles.
PERIODS = {
    "sensor-filter": 400,
    "crc-frame": 2500,
    "actuator-pid": 900,
}


def main() -> None:
    print("step 1: QTA WCET analysis per kernel")
    analyses = []
    for name, source in KERNELS.items():
        analysis = analyze_program(source, name=name, edge_sensitive=True)
        print(f"  {name:<14} static bound {analysis.static_bound.cycles:>5} "
              f"cycles (actual run: {analysis.result.actual_cycles})")
        analyses.append((name, analysis, PERIODS[name]))

    print("\nstep 2: schedulability of the task set built from the bounds")
    tasks = taskset_from_wcet_analyses(analyses)
    report = analyze_taskset(tasks)
    print(report.table())
    assert report.consistent
    assert report.rta.schedulable, "the demo task set is designed to fit"

    print("\nstep 3: what if the CRC frame doubled in size?  A designer "
          "explores headroom\nby scaling the WCET without re-running "
          "anything else:")
    from repro.rtos import TaskSpec
    stressed = [
        TaskSpec(t.name, t.period,
                 t.wcet * 2 if t.name == "crc-frame" else t.wcet)
        for t in tasks
    ]
    print(analyze_taskset(stressed).table())


if __name__ == "__main__":
    main()
