#!/usr/bin/env python3
"""The QTA flow: static WCET analysis + timing-annotated co-simulation.

Reproduces the QEMU Timing Analyzer tool demo end to end:

1. assemble the program and collect ``@loopbound`` annotations,
2. run the synthetic aiT analysis (per-block worst-case cycles),
3. preprocess the report into the WCET-annotated CFG (``ait2qta``),
4. compute the static IPET bound,
5. co-simulate binary + annotated CFG on the VP with the QTA plugin.

Run with:  python examples/wcet_analysis.py
"""

from repro.wcet import analyze_program

EXIT = """
    li a7, 93
    ecall
"""

PROGRAMS = {
    "fibonacci": """
_start:
    li a0, 0
    li a1, 1
    li t0, 0
    li t1, 20
fib:                    # @loopbound 20
    add t2, a0, a1
    mv a0, a1
    mv a1, t2
    addi t0, t0, 1
    blt t0, t1, fib
""" + EXIT,

    "insertion-sort": """
_start:
    la s0, array
    li s1, 1            # i
    li s2, 8
outer:                  # @loopbound 8
    slli t0, s1, 2
    add t0, t0, s0
    lw s3, 0(t0)        # key
    mv t1, s1           # j
inner:                  # @loopbound 8
    beqz t1, place
    slli t2, t1, 2
    add t2, t2, s0
    lw t3, -4(t2)
    ble t3, s3, place
    sw t3, 0(t2)
    addi t1, t1, -1
    j inner
place:
    slli t2, t1, 2
    add t2, t2, s0
    sw s3, 0(t2)
    addi s1, s1, 1
    blt s1, s2, outer
    lw a0, 0(s0)        # smallest element
""" + EXIT + """
.data
array: .word 42, 7, 99, 13, 8, 77, 1, 55
""",

    "crc8": """
_start:
    la s0, message
    li s1, 12           # length
    li a0, 0            # crc
byte_loop:              # @loopbound 12
    lbu t0, 0(s0)
    xor a0, a0, t0
    li t1, 8
bit_loop:               # @loopbound 8
    andi t2, a0, 0x80
    slli a0, a0, 1
    andi a0, a0, 0xFF
    beqz t2, no_poly
    xori a0, a0, 0x07
no_poly:
    addi t1, t1, -1
    bnez t1, bit_loop
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, byte_loop
""" + EXIT + """
.data
message: .ascii "scale4edge!!"
""",
}


def main() -> None:
    header = (f"{'program':<16} {'static bound':>13} {'QTA path':>10} "
              f"{'actual':>8} {'pessimism':>10} {'method':>18}")
    print(header)
    print("-" * len(header))
    for name, source in PROGRAMS.items():
        analysis = analyze_program(source, name=name)
        bound = analysis.static_bound
        qta = analysis.result
        print(f"{name:<16} {bound.cycles:>13} {qta.wcet_time:>10} "
              f"{qta.actual_cycles:>8} {qta.pessimism:>9.2f}x "
              f"{bound.method:>18}")
        # The soundness chain every row must satisfy:
        assert bound.cycles >= qta.wcet_time >= qta.actual_cycles

    # Show the intermediate format for one program (what QTA loads).
    analysis = analyze_program(PROGRAMS["fibonacci"], name="fibonacci")
    print("\nWCET-annotated CFG (QTA intermediate format) for fibonacci:")
    print(analysis.wcet_cfg.to_text())


if __name__ == "__main__":
    main()
