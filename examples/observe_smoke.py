#!/usr/bin/env python3
"""End-to-end smoke test for the observability surface.

Starts ``repro serve`` as a real subprocess, submits a short traced
fault campaign, and asserts that

* ``GET /metrics`` parses as Prometheus text exposition and counts the
  submitted job,
* ``GET /v1/events?since=`` tailing is monotonic — every cursor hop
  yields only new records, timestamps never go backwards, nothing is
  missed,
* the per-job trace view covers queue wait and execution and exports to
  a loadable Chrome trace,
* ``repro profile`` on the F1 compute workload attributes the hot path
  to the ``loop`` symbol and writes a collapsed-stack file whose top
  entry matches.

Used by CI (observe-smoke job) and runnable by hand:

    python examples/observe_smoke.py

Exits 0 on success, non-zero on any mismatch or timeout.  The whole run
is bounded by HARD_TIMEOUT so a wedged server cannot hang CI.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error

HARD_TIMEOUT = 180.0          # seconds for the entire smoke run
PORT = int(os.environ.get("SMOKE_PORT", "18973"))
MUTANTS = 20
SEED = 11

CAMPAIGN_WORKLOAD = """
_start:
    li t0, 0
    li t1, 50
loop:
    addi t0, t0, 1
    bne t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""

# The F1 compute loop, small enough for a smoke profile.
F1_WORKLOAD = """
_start:
    li t0, 0
    li t1, 2000
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""


def wait_for_health(client, deadline):
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return True
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    return False


def check_metrics(client):
    from repro.telemetry import parse_prometheus

    parsed = parse_prometheus(client.metrics_text())  # raises if malformed
    submitted = parsed["repro_serve_submitted_total"][()]
    if submitted < 1:
        raise SystemExit(f"metrics lost the submitted job: {submitted}")
    buckets = parsed.get("repro_serve_job_seconds_bucket", {})
    if not any(dict(labels).get("le") == "+Inf" for labels in buckets):
        raise SystemExit("job-time histogram is missing its +Inf bucket")
    print(f"/metrics: {len(parsed)} series, "
          f"submitted_total={submitted:.0f}")


def check_event_tailing(tails):
    """Cursor hops must be monotonic and loss-free.

    (Record *timestamps* are not globally ordered by design: spans are
    recorded at completion, and worker events merge in retroactively.)
    """
    cursor = 0
    seen = []
    for batch in tails:
        if batch["missed"]:
            raise SystemExit(f"tail lost {batch['missed']} records")
        if batch["next"] < cursor + len(batch["events"]):
            raise SystemExit("tail cursor went backwards")
        cursor = batch["next"]
        seen.extend(e["type"] for e in batch["events"])
    if len(seen) < 3:
        raise SystemExit(f"expected a stream of events, saw {len(seen)}")
    if seen.count("job.submitted") != 1:
        raise SystemExit(
            "tailing duplicated or lost the job.submitted record: "
            f"{seen.count('job.submitted')}")
    print(f"/v1/events: {len(seen)} records over {len(tails)} polls, "
          "cursor monotonic, no loss")


def check_trace(client, job_id):
    from repro.telemetry import to_chrome_trace

    events = client.job_events(job_id)["events"]
    types = {e["type"] for e in events}
    needed = {"job.queue_wait", "job", "campaign.started",
              "campaign.finished"}
    if not needed <= types:
        raise SystemExit(f"trace is missing spans: {sorted(needed - types)}")
    trace = to_chrome_trace(events)
    json.dumps(trace)  # must serialize
    print(f"trace: {len(events)} events, {len(trace)} chrome records")


def check_profile(deadline):
    """``repro profile`` on F1: hot symbol + collapsed export agree."""
    with tempfile.TemporaryDirectory() as tmp:
        asm = os.path.join(tmp, "f1.s")
        folded = os.path.join(tmp, "f1.folded")
        with open(asm, "w", encoding="utf-8") as handle:
            handle.write(F1_WORKLOAD)
        env = dict(os.environ, PYTHONPATH=os.path.join(
            os.path.dirname(__file__), "..", "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profile", asm,
             "--collapsed-out", folded],
            env=env, capture_output=True, text=True,
            timeout=max(1.0, deadline - time.monotonic()))
        if proc.returncode != 0:
            raise SystemExit(f"repro profile failed: {proc.stderr}")
        if "loop" not in proc.stdout:
            raise SystemExit("profile report does not mention the loop")
        with open(folded, encoding="utf-8") as handle:
            top = handle.readline().strip()
    if not top.startswith("loop;"):
        raise SystemExit(f"hottest collapsed entry is not loop: {top!r}")
    print(f"profile: top collapsed entry {top.split(' ')[0]}")


def main():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.observe import TraceContext
    from repro.serve.client import ServiceClient

    deadline = time.monotonic() + HARD_TIMEOUT
    env = dict(os.environ, PYTHONPATH=os.path.join(
        os.path.dirname(__file__), "..", "src"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServiceClient(f"http://127.0.0.1:{PORT}", timeout=10)
    try:
        if not wait_for_health(client, deadline):
            raise SystemExit("server never became healthy")

        tails = [client.events(since=0)]
        job = client.submit(
            "fault_campaign",
            {"source": CAMPAIGN_WORKLOAD, "mutants": MUTANTS, "seed": SEED},
            trace=TraceContext.mint().to_dict())
        print(f"submitted traced job {job['id']}")

        state = None
        while time.monotonic() < deadline:
            tails.append(client.events(since=tails[-1]["next"]))
            state = client.status(job["id"])["state"]
            if state not in ("pending", "running"):
                break
            time.sleep(0.3)
        if state != "succeeded":
            raise SystemExit(f"job finished in state {state}")
        tails.append(client.events(since=tails[-1]["next"]))

        check_metrics(client)
        check_event_tailing(tails)
        check_trace(client, job["id"])

        client.shutdown(drain=True)
        server.wait(timeout=max(1.0, deadline - time.monotonic()))
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

    check_profile(deadline)
    print("observability smoke test passed")


if __name__ == "__main__":
    main()
