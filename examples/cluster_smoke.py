#!/usr/bin/env python3
"""End-to-end smoke test for the distributed cluster fabric.

Starts ``repro coordinator`` plus two ``repro node`` workers as real
subprocesses, submits a seeded fault-injection campaign sharded four
ways over HTTP, polls it to completion, and asserts the merged result
is byte-identical to running the same spec in a single process through
``execute_job``.  Finishes with a graceful SIGTERM drain of both nodes
and a drained coordinator shutdown.  Used by CI (cluster-smoke job) and
runnable by hand:

    python examples/cluster_smoke.py

Exits 0 on success, non-zero on any mismatch or timeout.  The whole run
is bounded by HARD_TIMEOUT so a wedged process cannot hang CI.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error

HARD_TIMEOUT = 240.0          # seconds for the entire smoke run
PORT = int(os.environ.get("SMOKE_CLUSTER_PORT", "18973"))
MUTANTS = 18
SEED = 9
SHARDS = 4

CAMPAIGN_SRC = """
_start:
    li s0, 40
    li s1, 0
loop:
    add s1, s1, s0
    slli t0, s1, 1
    xor s1, s1, t0
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
"""

PAYLOAD = {"source": CAMPAIGN_SRC, "mutants": MUTANTS, "seed": SEED}


def canon(result):
    """Campaign result minus wall-clock fields, as sorted JSON bytes."""
    view = json.loads(json.dumps(result))
    view.pop("elapsed_seconds", None)
    if isinstance(view.get("campaign"), dict):
        view["campaign"].pop("elapsed_seconds", None)
    return json.dumps(view, sort_keys=True)


def wait_for(predicate, deadline, what):
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit(f"timed out waiting for {what}")


def main():
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    sys.path.insert(0, src)
    from repro.serve.client import ServiceClient
    from repro.serve.executors import execute_job
    from repro.serve.jobs import null_context

    deadline = time.monotonic() + HARD_TIMEOUT
    direct = canon(execute_job("fault_campaign", dict(PAYLOAD),
                               null_context()))
    print(f"direct run: {MUTANTS} mutants, seed {SEED}")

    env = dict(os.environ, PYTHONPATH=src)
    url = f"http://127.0.0.1:{PORT}"
    coordinator = subprocess.Popen(
        [sys.executable, "-m", "repro", "coordinator",
         "--port", str(PORT)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    nodes = []
    client = ServiceClient(url, timeout=10)
    try:
        wait_for(lambda: client.health()["status"] == "ok", deadline,
                 "coordinator health")
        nodes = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "node",
                 "--coordinator", url, "--name", f"smoke-{i}",
                 "--poll-interval", "0.05"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            for i in range(2)
        ]
        wait_for(
            lambda: len(client.stats()["service"]["cluster"]["nodes"]) == 2,
            deadline, "both nodes to attach")
        print("coordinator up, 2 nodes attached")

        job = client.submit("fault_campaign", dict(PAYLOAD), shards=SHARDS)
        print(f"submitted job {job['id']} ({SHARDS} shards)")
        done = client.wait(job["id"],
                           timeout=max(1.0, deadline - time.monotonic()),
                           poll_interval=0.2)
        if done["state"] != "succeeded":
            raise SystemExit(f"job finished in state {done['state']}: "
                             f"{done.get('error')}")
        if canon(done["result"]) != direct:
            raise SystemExit(
                "cluster result not byte-identical to direct run")
        print(f"cluster run byte-identical: {done['result']['counts']}")

        # The coordinator counts completed work items synchronously
        # (per-node stats only refresh on heartbeats, which may lag a
        # short job), so assert on the work ledger.
        cluster = client.stats()["service"]["cluster"]
        done_items = cluster["work"]["done"]
        if done_items != SHARDS:
            raise SystemExit(f"expected {SHARDS} completed shard items, "
                             f"saw {done_items}")
        print(f"work ledger: {done_items} shard items done across "
              f"{len(cluster['nodes'])} nodes")

        # Graceful drain: SIGTERM each node, then drain the coordinator.
        for node in nodes:
            node.send_signal(signal.SIGTERM)
        for node in nodes:
            node.wait(timeout=max(1.0, deadline - time.monotonic()))
            if node.returncode != 0:
                raise SystemExit(
                    f"node exited {node.returncode} after SIGTERM")
        client.shutdown(drain=True)
        coordinator.wait(timeout=max(1.0, deadline - time.monotonic()))
        if coordinator.returncode != 0:
            raise SystemExit(
                f"coordinator exited {coordinator.returncode}")
        print("smoke test passed: sharded cluster run byte-identical, "
              "graceful drain clean")
    finally:
        for proc in nodes + [coordinator]:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    main()
