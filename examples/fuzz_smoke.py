#!/usr/bin/env python3
"""Bounded end-to-end smoke test for the coverage-guided fuzzer.

Runs a ~15-second time-budgeted fuzzing session from the *minimal* seed
(one ``addi`` instruction) and asserts the properties CI cares about:

* at least one coverage-increasing input beyond the seed was found
  (in practice: dozens within the first second);
* the triage output is machine-parsable JSON with consistent counts;
* a second, iteration-bounded session with the same ``--seed``
  reproduces the exact corpus signatures (the determinism guarantee).

Used by the CI ``fuzz-smoke`` job and runnable by hand:

    python examples/fuzz_smoke.py

Exits 0 on success, non-zero on any violated assertion.  The session is
wall-clock bounded internally; CI wraps it in ``timeout`` as well.
"""

import json
import sys
import time

TIME_BUDGET = 15.0        # seconds of fuzzing for the coverage assertion
REPRO_ITERATIONS = 300    # iteration-bounded pass for the determinism check
SEED = 2024


def main() -> int:
    from repro.fuzz import FuzzConfig, FuzzEngine, trivial_seed
    from repro.isa import RV32IMC_ZICSR

    started = time.monotonic()
    seeds = trivial_seed(RV32IMC_ZICSR)
    seed_elements = None

    # -- 1. time-budgeted session from the minimal seed ------------------
    engine = FuzzEngine(RV32IMC_ZICSR, FuzzConfig(
        iterations=10_000_000, seed=SEED, time_budget=TIME_BUDGET,
        max_instructions=2000, minimize_evals=8))
    result = engine.run(seeds)
    seed_elements = len(result.signatures[0])
    print(result.summary())
    print()

    assert result.corpus_size > 1, \
        "no coverage-increasing input found beyond the seed"
    assert result.coverage_elements > seed_elements, \
        "combined coverage did not grow past the seed signature"
    print(f"coverage grew {seed_elements} -> {result.coverage_elements} "
          f"elements across {result.corpus_size} corpus inputs")

    # -- 2. triage output parses and is self-consistent -------------------
    triage = json.loads(json.dumps(result.triage.to_dict()))
    assert triage["classes"] == len(triage["findings"])
    assert sum(triage["counts"].values()) == triage["classes"]
    for finding in triage["findings"]:
        assert finding["outcome"] in ("trap", "hang", "divergence")
        assert finding["count"] >= 1
        bytes.fromhex(finding["code_hex"])   # witness must decode as hex
    print(f"triage parses: {triage['classes']} distinct classes "
          f"{triage['counts']}")

    # -- 3. seeded reproducibility (iteration-bounded) ---------------------
    def bounded_run():
        bounded = FuzzEngine(RV32IMC_ZICSR, FuzzConfig(
            iterations=REPRO_ITERATIONS, seed=SEED,
            max_instructions=2000, minimize_evals=8))
        return bounded.run(trivial_seed(RV32IMC_ZICSR))

    first = bounded_run()
    second = bounded_run()
    assert first.signature_digests() == second.signature_digests(), \
        "same-seed sessions diverged"
    print(f"determinism holds: {REPRO_ITERATIONS} iterations twice -> "
          f"identical {first.corpus_size}-entry corpus")

    print(f"\nfuzz smoke OK in {time.monotonic() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
