#!/usr/bin/env python3
"""Edge demonstrator: UART door-lock controller with IO-access monitoring.

The scenario from the group's security analysis: an access-control unit
receives a PIN over a serial interface.  The non-invasive dynamic IO
analysis observes every UART access through the VP's plugin API and flags
accesses that do not originate from the authorized driver code — catching
a planted backdoor that leaks the stored PIN.

Run with:  python examples/access_control_demo.py
"""

from repro.core import access_control_demo


def main() -> None:
    print("=== legitimate firmware ===")
    for attempt, label in [(b"1234", "correct PIN"),
                           (b"9999", "wrong PIN"),
                           (b"12", "truncated input")]:
        result = access_control_demo(pin=b"1234", attempt=attempt)
        verdict = "GRANTED" if result.extras["granted"] else "DENIED"
        print(f"  {label:<16} -> {verdict:<8} uart={result.uart_output!r} "
              f"violations={result.extras['violations']}")

    print("\n=== firmware with a planted backdoor ===")
    result = access_control_demo(pin=b"1234", attempt=b"1234",
                                 with_backdoor=True)
    print(f"  uart output: {result.uart_output!r}  "
          f"(note the leaked PIN digits before OPEN)")
    print()
    print("policy view (IO-access monitor):")
    print(result.extras["monitor_report"])
    print()
    print("data-flow view (taint tracking, secret = stored PIN):")
    print(result.extras["taint_report"])
    assert result.extras["violations"] == 2, \
        "the monitor must flag exactly the two backdoor stores"
    assert result.extras["leaks"] == 2, \
        "taint tracking must see the PIN bytes reach the UART"


if __name__ == "__main__":
    main()
