"""Checkpoint parity smoke: accelerated campaigns must classify identically.

Runs one mixed-target campaign (transient + code + stuck-at mutants) four
ways — {checkpoints on, off} x {sequential, jobs=2} — and asserts that
every configuration serializes to byte-identical ``CampaignResult`` JSON
once wall time is zeroed.  The checkpoint engine is a pure acceleration:
any divergence here is a correctness bug, not a tuning issue.

Self-checking; exits non-zero on any mismatch.  CI runs this under a hard
timeout as part of the bench-smoke job.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.asm import assemble  # noqa: E402
from repro.coverage import measure_coverage  # noqa: E402
from repro.faultsim import (  # noqa: E402
    FaultCampaign,
    MutantBudget,
    generate_mutants,
)
from repro.isa import RV32IMC_ZICSR  # noqa: E402

PROGRAM = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    la t0, scratch
    sw a0, 0(t0)
    lw a4, 0(t0)
    li t1, 0
    li t2, 120
loop:
    addi t1, t1, 1
    xor a5, a4, t1
    blt t1, t2, loop
    li a3, 42
    beq a4, a3, good
    li a0, 1
    j out
good:
    li a0, 0
out:
    li a7, 93
    ecall
.data
scratch: .word 0
"""


def run_campaign(faults, checkpoints, jobs):
    program = assemble(PROGRAM, isa=RV32IMC_ZICSR)
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR,
                             checkpoints=checkpoints)
    result = campaign.run(faults, jobs=jobs)
    result.elapsed_seconds = 0.0  # wall time is the only allowed delta
    return result.to_json()


def main() -> int:
    program = assemble(PROGRAM, isa=RV32IMC_ZICSR)
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    coverage = measure_coverage(program, isa=RV32IMC_ZICSR)
    budget = MutantBudget(code=8, gpr_transient=20, gpr_stuck=6,
                          memory_transient=6, memory_stuck=4)
    faults = generate_mutants(program, coverage, budget,
                              golden_instructions=golden.instructions,
                              seed=11)
    print(f"golden: {golden.instructions} instructions, "
          f"{len(faults)} mutants")

    reference = run_campaign(faults, checkpoints=False, jobs=1)
    configs = [("checkpoints=False jobs=2", False, 2),
               ("checkpoints=True  jobs=1", True, 1),
               ("checkpoints=True  jobs=2", True, 2)]
    failures = 0
    for label, checkpoints, jobs in configs:
        got = run_campaign(faults, checkpoints=checkpoints, jobs=jobs)
        ok = got == reference
        print(f"  {label}: {'OK' if ok else 'MISMATCH'}")
        failures += 0 if ok else 1
    if failures:
        print(f"FAIL: {failures} configuration(s) diverged from the "
              "sequential baseline")
        return 1
    print("PASS: all configurations byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
