"""T5 — per-ISA-module instruction-type coverage breakdown.

Paper shape (coverage paper): coverage differs per ISA module and per
suite — the directed architectural suite covers the system/CSR corner the
random generator never reaches, while the random generator saturates the
compute modules; the breakdown localises what each suite misses.
"""

import pytest

from repro.coverage import measure_suite
from repro.isa import RV32IMCF_ZICSR
from repro.testgen import (
    ArchSuiteGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)

ISA = RV32IMCF_ZICSR


def measure_breakdowns():
    suites = {
        "architectural": ArchSuiteGenerator(ISA).generate(),
        "unit-tests": UnitSuiteGenerator(ISA).generate(),
        "torture": TortureGenerator(
            ISA, TortureConfig(length=500)).generate_suite(3),
    }
    return {
        name: measure_suite(programs, isa=ISA,
                            max_instructions=200_000).union
        for name, programs in suites.items()
    }


def test_t5_per_module_breakdown(benchmark, record):
    unions = benchmark.pedantic(measure_breakdowns, rounds=1, iterations=1)

    modules = sorted({m for union in unions.values()
                      for m in union.module_breakdown()})
    header = f"{'suite':<16}" + "".join(f"{m:>12}" for m in modules)
    lines = [header, "-" * len(header)]
    for name, union in unions.items():
        breakdown = union.module_breakdown()
        cells = []
        for module in modules:
            hit, total = breakdown[module]
            cells.append(f"{hit}/{total}".rjust(12))
        lines.append(f"{name:<16}" + "".join(cells))
    record("T5-module-breakdown", "\n".join(lines))

    arch = unions["architectural"].module_breakdown()
    torture = unions["torture"].module_breakdown()
    unit = unions["unit-tests"].module_breakdown()
    # The directed suite is complete in every module.
    assert all(hit == total for hit, total in arch.values())
    # The random generator saturates the compute modules but cannot emit
    # the control/system corner (jumps, ecall/ebreak, wfi, sp-relative C).
    assert torture["M"][0] == torture["M"][1]
    assert torture["I"][0] < torture["I"][1]
    assert torture["C"][0] < torture["C"][1]
    # The unit suite skips the privileged/system corner entirely.
    assert unit["Zicsr"][0] == 0
