"""Emulator performance report: MIPS, campaign throughput, QTA overhead.

Writes ``BENCH_emulator.json`` (repo root by default) with the headline
numbers the performance work is judged by:

* ``mips`` — interpreter speed on the F1 compute workload (cache on,
  no plugins), plus the speedup over the recorded pre-specialization
  baseline;
* ``emulator_compiled`` — the same F1 workload under each execution
  backend (``interp`` / ``fastpath`` / ``compiled``) with the compiled
  tier's speedups over both; RunResult parity across backends is
  asserted first, and the report fails loudly if the compiled backend
  silently fell back to the interpreter tier;
* ``emulator_memory`` — the F5 memory-heavy workload (a multi-block
  load/store loop) under each backend, with per-backend RAM fast-path
  hit rates, the compiled tier's trace-compilation counters, and its
  speedup over the recorded pre-fast-path compiled-tier baseline;
  RunResult *and* dirty-page parity across backends is asserted first;
* ``campaign`` — fault-campaign throughput (mutants/s) sequential and
  with a worker pool, plus the parallel speedup;
* ``campaign_checkpoint`` — throughput of a transient-heavy campaign
  (the F2 workload) with and without the warm-checkpoint engine, plus
  ``campaign_checkpoint_speedup`` — classification is asserted
  byte-identical before the speedup is recorded;
* ``fuzz_campaign`` — coverage-guided fuzzing throughput (execs/s) plus
  the coverage the session reached from the trivial seed, sequential and
  with a worker pool — corpus signatures are asserted identical before
  the parallel number is recorded;
* ``cluster_scaling`` — cluster-fabric throughput (jobs/s) with one vs
  two ``repro node`` worker subprocesses attached to an in-process
  coordinator — per-job results are asserted identical across the two
  cluster shapes before the scaling factor is recorded (``null`` plus a
  note on single-CPU hosts, where no scaling is observable);
* ``differential_matrix`` — differential-verification throughput
  (programs/sec per configuration pair) over a seeded torture corpus,
  with per-pair escalation counts that must all be zero — the report
  fails loudly if any configuration pair disagrees on this host;
* ``qta_overhead_factor`` — slowdown when the QTA timing plugin rides
  along, which must stay a small bounded factor;
* ``telemetry_overhead`` — cost of disabled telemetry and of the idle
  (default, exec-count-harvesting) profiler on the F1 hot path, each
  asserted under 2% so observability never silently regresses the
  interpreter speed work.

Usage::

    python benchmarks/bench_report.py            # full report
    python benchmarks/bench_report.py --smoke    # fast subset (CI)
    make bench-report

Numbers are machine-dependent; the JSON carries the host's cpu count so
parallel results can be read in context (a 1-core container shows no
pool speedup by construction).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.asm import assemble  # noqa: E402
from repro.coverage import measure_coverage  # noqa: E402
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants  # noqa: E402
from repro.isa import RV32IMC_ZICSR  # noqa: E402
from repro.vp import Machine, MachineConfig  # noqa: E402

#: Interpreter speed on this workload before the hot-path specialization
#: work (fused op tuples, fast-path step selection, block chaining),
#: measured on the reference container.  Machine-dependent — the recorded
#: speedup is only meaningful relative to the same host, but the factor
#: transfers roughly across similar CPUs.
BASELINE_INSNS_PER_SECOND = 1_047_855

# The F1 compute loop (~200k dynamic instructions per run).
WORKLOAD = """
_start:
    li t0, 0
    li t1, {iters}
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""

#: Compiled-tier speed on the F5 memory workload before the RAM fast
#: path and trace compilation landed (per-access bus dispatch, one
#: compiled function per block), measured on the reference container.
#: Machine-dependent, like :data:`BASELINE_INSNS_PER_SECOND`.
F5_COMPILED_BASELINE_INSNS_PER_SECOND = 1_902_000

# The F5 memory-heavy workload: a load/store loop long enough to split
# into multiple translation blocks, so the compiled tier must form a
# cross-block trace to cover it, and dense enough in RAM traffic that
# the fast-path window dominates the profile.
_MEMORY_BODY = "\n".join(
    f"    lw t2, {(k % 8) * 4}(s0)\n"
    "    add a0, a0, t2\n"
    "    xor t2, t2, t0\n"
    f"    sw t2, {(k % 8) * 4}(s0)"
    for k in range(10))

MEMORY_WORKLOAD = """
_start:
    la s0, scratch
    li t0, 0
    li t1, {iters}
    li a0, 0
loop:
""" + _MEMORY_BODY + """
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
.data
scratch: .word 0, 0, 0, 0, 0, 0, 0, 0
"""

CAMPAIGN_PROGRAM = """
_start:
    li a1, 6
    li a2, 7
    mul a0, a1, a2
    la t0, scratch
    sw a0, 0(t0)
    lw a4, 0(t0)
    li t1, 0
    li t2, 200
loop:
    addi t1, t1, 1
    blt t1, t2, loop
    li a3, 42
    beq a4, a3, good
    li a0, 1
    j out
good:
    li a0, 0
out:
    li a7, 93
    ecall
.data
scratch: .word 0
"""

# The F2 transient-heavy workload: a long arithmetic loop whose golden
# run is large enough that run-to-trigger prefixes dominate mutant cost
# — exactly what warm checkpoints amortize.
CHECKPOINT_PROGRAM = """
_start:
    li a0, 0
    li s0, 0
    li s1, {iters}
outer:
    addi t0, s0, 17
    xor t1, t0, a0
    slli t2, t1, 2
    srli t3, t2, 1
    add a0, a0, t3
    andi a0, a0, 2047
    addi s0, s0, 1
    blt s0, s1, outer
    andi a0, a0, 0xFF
    li a7, 93
    ecall
"""


def measure_mips(iters: int, repeats: int):
    """Best-of-N interpreter speed (cache on, no plugins)."""
    program = assemble(WORKLOAD.format(iters=iters), isa=RV32IMC_ZICSR)
    best = 0.0
    insns = 0
    for _ in range(repeats):
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        start = time.perf_counter()
        result = machine.run(max_instructions=50_000_000)
        elapsed = time.perf_counter() - start
        assert result.stop_reason == "exit", result.stop_reason
        insns = result.instructions
        best = max(best, result.instructions / elapsed)
    return best, insns


def measure_backend_mips(iters: int, repeats: int):
    """Per-backend speed on F1: interp vs fastpath vs compiled.

    All three runs must produce the same RunResult (stop reason, exit
    code, instruction and cycle counts) — parity is asserted before any
    throughput is recorded.  The compiled run additionally must show the
    JIT actually engaged (blocks compiled, instructions retired in the
    compiled tier); a silent fall-back to the interpreter would otherwise
    masquerade as a JIT measurement.
    """
    program = assemble(WORKLOAD.format(iters=iters), isa=RV32IMC_ZICSR)
    entries = {}
    outcomes = {}
    for backend in ("interp", "fastpath", "compiled"):
        best = 0.0
        stats = None
        for _ in range(repeats):
            machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                            backend=backend))
            machine.load(program)
            start = time.perf_counter()
            result = machine.run(max_instructions=50_000_000)
            elapsed = time.perf_counter() - start
            assert result.stop_reason == "exit", result.stop_reason
            best = max(best, result.instructions / elapsed)
            stats = machine.jit_stats()
            outcomes[backend] = (result.stop_reason, result.exit_code,
                                 result.instructions, result.cycles)
        entries[backend] = {"mips": round(best / 1e6, 3),
                            "insns_per_second": round(best, 0)}
        if backend == "compiled":
            if not stats or stats["blocks_compiled"] == 0 \
                    or stats["compiled_instructions"] == 0:
                raise RuntimeError(
                    "compiled backend silently fell back to the "
                    f"interpreter tier on F1 (stats: {stats})")
            entries[backend]["jit"] = stats
    if len(set(outcomes.values())) != 1:
        raise RuntimeError(f"backend results diverged on F1: {outcomes}")
    entries["compiled_speedup_vs_interp"] = round(
        entries["compiled"]["insns_per_second"]
        / entries["interp"]["insns_per_second"], 3)
    entries["compiled_speedup_vs_fastpath"] = round(
        entries["compiled"]["insns_per_second"]
        / entries["fastpath"]["insns_per_second"], 3)
    return entries


def measure_memory_mips(iters: int, repeats: int):
    """Per-backend speed on F5: the memory fast path + trace tier.

    Beyond the F1-style RunResult parity, the dirty-page sets must match
    across backends (the fast path updates them inline) and the compiled
    run must show both optimizations actually engaged: at least one
    multi-block trace compiled with instructions retired in it, and a
    non-zero RAM fast-path hit rate on every backend.
    """
    program = assemble(MEMORY_WORKLOAD.format(iters=iters),
                       isa=RV32IMC_ZICSR)
    entries = {}
    outcomes = {}
    for backend in ("interp", "fastpath", "compiled"):
        best = 0.0
        jit = mem = None
        for _ in range(repeats):
            machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                            backend=backend))
            machine.load(program)
            start = time.perf_counter()
            result = machine.run(max_instructions=50_000_000)
            elapsed = time.perf_counter() - start
            assert result.stop_reason == "exit", result.stop_reason
            best = max(best, result.instructions / elapsed)
            jit = machine.jit_stats()
            mem = machine.mem_stats()
            outcomes[backend] = (result.stop_reason, result.exit_code,
                                 result.instructions, result.cycles,
                                 tuple(sorted(machine.ram.dirty_pages())))
        if mem["fastpath_hit_rate"] <= 0:
            raise RuntimeError(
                f"RAM fast path never engaged under {backend} on F5 "
                f"(mem: {mem})")
        entries[backend] = {"mips": round(best / 1e6, 3),
                            "insns_per_second": round(best, 0),
                            "mem": mem}
        if backend == "compiled":
            if not jit or jit["traces_compiled"] == 0 \
                    or jit["trace_instructions"] == 0:
                raise RuntimeError(
                    "compiled backend never reached the trace tier on F5 "
                    f"(stats: {jit})")
            entries[backend]["jit"] = jit
    if len(set(outcomes.values())) != 1:
        raise RuntimeError(f"backend results diverged on F5: {outcomes}")
    compiled_rate = entries["compiled"]["insns_per_second"]
    entries["compiled_speedup_vs_interp"] = round(
        compiled_rate / entries["interp"]["insns_per_second"], 3)
    entries["compiled_baseline_insns_per_second"] = \
        F5_COMPILED_BASELINE_INSNS_PER_SECOND
    entries["compiled_speedup_vs_baseline"] = round(
        compiled_rate / F5_COMPILED_BASELINE_INSNS_PER_SECOND, 3)
    return entries


def measure_qta_overhead(iters: int):
    """Slowdown factor of the QTA timing plugin on the same workload."""
    from repro.wcet import QtaPlugin, preprocess, run_ait_analysis

    program = assemble(WORKLOAD.format(iters=iters), isa=RV32IMC_ZICSR)

    def run(with_qta: bool) -> float:
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        if with_qta:
            report = run_ait_analysis(program)
            machine.add_plugin(QtaPlugin(preprocess(report), strict=False))
        start = time.perf_counter()
        result = machine.run(max_instructions=50_000_000)
        elapsed = time.perf_counter() - start
        assert result.stop_reason == "exit", result.stop_reason
        return result.instructions / elapsed

    plain = run(with_qta=False)
    with_plugin = run(with_qta=True)
    return plain / with_plugin


#: Observability on the F1 hot path must cost less than this fraction.
TELEMETRY_OVERHEAD_LIMIT = 0.02


def measure_telemetry_overhead(iters: int, repeats: int):
    """Overhead of observability riding along on the F1 workload.

    Three configurations — no instrumentation, telemetry attached but
    disabled (the null session), and the default profiler (which
    harvests ``TranslationBlock.exec_count`` instead of hooking block
    execution) — measured interleaved, best-of-N each, so drift on the
    host biases no single configuration.  Both instrumented overheads
    are asserted under :data:`TELEMETRY_OVERHEAD_LIMIT`.

    ``iters`` is floored so each run takes long enough that the one-off
    attach cost (plugin registration flushes the block cache) cannot
    masquerade as per-instruction overhead.
    """
    from repro.observe import SamplingProfiler
    from repro.telemetry import NULL_TELEMETRY

    iters = max(iters, 20_000)
    program = assemble(WORKLOAD.format(iters=iters), isa=RV32IMC_ZICSR)

    instructions = 0

    def one(setup) -> float:
        nonlocal instructions
        machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
        machine.load(program)
        setup(machine)
        start = time.perf_counter()
        result = machine.run(max_instructions=50_000_000)
        elapsed = time.perf_counter() - start
        assert result.stop_reason == "exit", result.stop_reason
        instructions = result.instructions
        return elapsed

    configs = {
        "plain": lambda machine: None,
        "telemetry_disabled":
            lambda machine: setattr(machine, "telemetry", NULL_TELEMETRY),
        "idle_profiler":
            lambda machine: machine.add_plugin(SamplingProfiler()),
    }
    best = {name: float("inf") for name in configs}
    for _ in range(max(5, repeats)):
        for name, setup in configs.items():
            best[name] = min(best[name], one(setup))
    overheads = {name: best[name] / best["plain"] - 1.0
                 for name in configs if name != "plain"}
    for name, overhead in overheads.items():
        assert overhead < TELEMETRY_OVERHEAD_LIMIT, (
            f"{name} costs {overhead:.2%} on the F1 hot path "
            f"(limit {TELEMETRY_OVERHEAD_LIMIT:.0%})")
    return {
        "limit": TELEMETRY_OVERHEAD_LIMIT,
        "telemetry_disabled_overhead": round(
            overheads["telemetry_disabled"], 4),
        "idle_profiler_overhead": round(
            overheads["idle_profiler"], 4),
        "plain_mips": round(instructions / best["plain"] / 1e6, 3),
    }


def campaign_faults(campaign: FaultCampaign, mutants: int):
    golden = campaign.golden()
    coverage = measure_coverage(campaign.program, isa=RV32IMC_ZICSR)
    per = max(1, mutants // 5)
    budget = MutantBudget(code=per, gpr_transient=per, gpr_stuck=per,
                          memory_transient=per, memory_stuck=per)
    return generate_mutants(campaign.program, coverage, budget,
                            golden_instructions=golden.instructions,
                            seed=0)


def measure_campaign(mutants: int, jobs: int):
    """Sequential vs pooled campaign throughput over the same mutants."""
    program = assemble(CAMPAIGN_PROGRAM, isa=RV32IMC_ZICSR)

    def run(n_jobs: int):
        campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
        faults = campaign_faults(campaign, mutants)
        start = time.perf_counter()
        result = campaign.run(faults, jobs=n_jobs)
        elapsed = time.perf_counter() - start
        return result, elapsed

    sequential, seq_elapsed = run(1)
    if multiprocessing.cpu_count() == 1:
        # A 1-core host cannot show a pool speedup by construction;
        # recording a sub-1.0 "speedup" would just be misleading.
        return {
            "mutants": sequential.total,
            "sequential_mutants_per_second": round(
                sequential.total / seq_elapsed, 2),
            "parallel_jobs": jobs,
            "parallel_mutants_per_second": None,
            "parallel_speedup": None,
            "note": "single-CPU host: pool measurement skipped "
                    "(no parallel speedup is observable by construction)",
            "outcome_counts": sequential.counts,
        }
    parallel, par_elapsed = run(jobs)
    assert [r.outcome for r in parallel.results] == \
        [r.outcome for r in sequential.results], \
        "parallel campaign diverged from sequential classification"
    return {
        "mutants": sequential.total,
        "sequential_mutants_per_second": round(
            sequential.total / seq_elapsed, 2),
        "parallel_jobs": jobs,
        "parallel_mutants_per_second": round(
            parallel.total / par_elapsed, 2),
        "parallel_speedup": round(seq_elapsed / par_elapsed, 3),
        "outcome_counts": sequential.counts,
    }


def measure_checkpoint_campaign(mutants: int, iters: int):
    """Transient-heavy campaign with vs without the checkpoint engine.

    Both runs classify the same mutants; their results (with wall time
    zeroed) must serialize byte-identically before the speedup counts.
    """
    program = assemble(CHECKPOINT_PROGRAM.format(iters=iters),
                       isa=RV32IMC_ZICSR)
    budget = MutantBudget(code=0, gpr_transient=mutants, gpr_stuck=0,
                          memory_transient=0, memory_stuck=0)

    def run(checkpoints: bool):
        campaign = FaultCampaign(program, isa=RV32IMC_ZICSR,
                                 checkpoints=checkpoints)
        golden = campaign.golden()
        faults = generate_mutants(program, budget=budget,
                                  golden_instructions=golden.instructions,
                                  seed=1)
        start = time.perf_counter()
        result = campaign.run(faults)
        elapsed = time.perf_counter() - start
        return campaign, result, elapsed

    _, baseline, base_elapsed = run(False)
    accelerated_campaign, accelerated, ckpt_elapsed = run(True)
    baseline.elapsed_seconds = 0.0
    accelerated.elapsed_seconds = 0.0
    assert accelerated.to_json() == baseline.to_json(), \
        "checkpointed campaign diverged from baseline classification"
    return {
        "mutants": baseline.total,
        "golden_instructions":
            accelerated_campaign.golden().instructions,
        "baseline_mutants_per_second": round(
            baseline.total / base_elapsed, 2),
        "checkpoint_mutants_per_second": round(
            accelerated.total / ckpt_elapsed, 2),
        "campaign_checkpoint_speedup": round(
            base_elapsed / ckpt_elapsed, 3),
        "checkpoint_stats": accelerated_campaign.checkpoint_stats(),
        "outcome_counts": baseline.counts,
    }


def measure_fuzz_campaign(iterations: int, jobs: int):
    """Fuzzing throughput and coverage growth, sequential vs pooled.

    The parallel run must reproduce the sequential corpus exactly (same
    master seed ⇒ same signatures, by design) — asserted before its
    throughput is recorded.
    """
    from repro.fuzz import FuzzConfig, FuzzEngine, trivial_seed

    def run(n_jobs: int):
        engine = FuzzEngine(RV32IMC_ZICSR, FuzzConfig(
            iterations=iterations, seed=0, jobs=n_jobs, minimize_evals=8))
        result = engine.run(trivial_seed(RV32IMC_ZICSR))
        return result

    sequential = run(1)
    seed_elements = len(next(iter(sequential.signatures)))
    entry = {
        "iterations": sequential.iterations,
        "executions": sequential.executions,
        "sequential_execs_per_second": round(
            sequential.execs_per_second, 2),
        "corpus_size": sequential.corpus_size,
        "coverage_elements": sequential.coverage_elements,
        "seed_coverage_elements": seed_elements,
        "insn_coverage": round(sequential.insn_coverage, 4),
        "distinct_findings": len(sequential.triage),
        "parallel_jobs": jobs,
        "parallel_execs_per_second": None,
        "parallel_speedup": None,
    }
    if multiprocessing.cpu_count() == 1:
        entry["note"] = ("single-CPU host: pool measurement skipped "
                         "(no parallel speedup is observable by "
                         "construction)")
        return entry
    parallel = run(jobs)
    assert parallel.signature_digests() == sequential.signature_digests(), \
        "parallel fuzzing diverged from the sequential corpus"
    entry["parallel_execs_per_second"] = round(
        parallel.execs_per_second, 2)
    entry["parallel_speedup"] = round(
        sequential.elapsed_seconds / parallel.elapsed_seconds, 3)
    return entry


def measure_cluster_scaling(job_count: int, mutants: int):
    """Cluster jobs/sec with 1 vs 2 worker-node subprocesses.

    Worker nodes are real ``repro node`` subprocesses (each with its own
    interpreter, so the scaling is not GIL-bound) attached to an
    in-process coordinator.  Every job is the same seeded campaign, and
    the per-job results from both cluster shapes must match exactly
    before the scaling factor is recorded — the fabric's determinism
    contract, re-checked where throughput is measured.
    """
    import os
    import subprocess

    from repro.cluster import ClusterCoordinator
    from repro.serve.client import ServiceClient

    payload = {"source": CAMPAIGN_PROGRAM, "mutants": mutants, "seed": 3}
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")

    def canon(result):
        view = json.loads(json.dumps(result))
        view.pop("elapsed_seconds", None)
        if isinstance(view.get("campaign"), dict):
            view["campaign"].pop("elapsed_seconds", None)
        return json.dumps(view, sort_keys=True)

    def run(node_count: int):
        coord = ClusterCoordinator(port=0).start()
        nodes = []
        try:
            env = dict(os.environ)
            env["PYTHONPATH"] = src + (
                os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else "")
            nodes = [subprocess.Popen(
                [sys.executable, "-m", "repro", "node",
                 "--coordinator", coord.url,
                 "--name", f"bench-{i}", "--poll-interval", "0.02"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL) for i in range(node_count)]
            deadline = time.monotonic() + 120
            while len(coord.nodes) < node_count:
                assert time.monotonic() < deadline, \
                    "bench worker nodes never attached"
                time.sleep(0.05)
            client = ServiceClient(coord.url, timeout=10)
            start = time.perf_counter()
            submitted = [client.submit("fault_campaign", dict(payload))
                         for _ in range(job_count)]
            results = [client.wait(job["id"], timeout=600)
                       for job in submitted]
            elapsed = time.perf_counter() - start
            for done in results:
                assert done["state"] == "succeeded", done.get("error")
            return [canon(done["result"]) for done in results], elapsed
        finally:
            for proc in nodes:
                if proc.poll() is None:
                    proc.terminate()
            for proc in nodes:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            coord.shutdown(drain=False)

    one_results, one_elapsed = run(1)
    entry = {
        "jobs": job_count,
        "mutants_per_job": mutants,
        "one_node_jobs_per_second": round(job_count / one_elapsed, 3),
        "two_node_jobs_per_second": None,
        "scaling": None,
    }
    if multiprocessing.cpu_count() == 1:
        entry["note"] = ("single-CPU host: two-node measurement skipped "
                         "(no scaling is observable by construction)")
        return entry
    two_results, two_elapsed = run(2)
    assert two_results == one_results, \
        "two-node cluster diverged from the one-node results"
    entry["two_node_jobs_per_second"] = round(job_count / two_elapsed, 3)
    entry["scaling"] = round(one_elapsed / two_elapsed, 3)
    return entry


def measure_differential_matrix(programs: int, smoke: bool):
    """Differential-verification throughput: programs/sec per pair.

    Runs one seeded campaign per matrix pair over a torture corpus and
    records comparison throughput plus the escalation count — which must
    be zero: a bench host measuring a diverging emulator is reporting
    the speed of broken code, so any divergence fails the report loudly.
    """
    from repro.verify import DiffCampaign, VerifyCampaignConfig

    pair_specs = ["interp:fastpath", "interp:compiled",
                  "fastpath:compiled", "fastpath:nocache"]
    if not smoke:
        pair_specs += ["compiled:compiled+traces", "fastpath:ckpt-resume"]
    corpus = f"torture:{programs}"
    entry = {"corpus": corpus, "programs": programs, "pairs": {}}
    total_escalations = 0
    for spec in pair_specs:
        campaign = DiffCampaign(RV32IMC_ZICSR, VerifyCampaignConfig(
            corpus=corpus, matrix=spec, seed=0))
        result = campaign.run()
        total_escalations += result.divergences
        entry["pairs"][spec] = {
            "programs_per_second": round(
                programs / result.elapsed_seconds, 2)
            if result.elapsed_seconds else None,
            "escalations": result.divergences,
        }
    entry["total_escalations"] = total_escalations
    if total_escalations:
        raise RuntimeError(
            f"differential matrix found {total_escalations} divergence(s) "
            f"on this host: {entry}")
    return entry


def build_report(smoke: bool) -> dict:
    iters = 2_000 if smoke else 20_000
    repeats = 1 if smoke else 3
    mutants = 30 if smoke else 200
    jobs = 2 if smoke else 4

    rate, insns = measure_mips(iters, repeats)
    report = {
        "workload": "f1-compute-loop",
        "mode": "smoke" if smoke else "full",
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": multiprocessing.cpu_count(),
        },
        "emulator": {
            "instructions": insns,
            "insns_per_second": round(rate, 0),
            "mips": round(rate / 1e6, 3),
            "baseline_insns_per_second": BASELINE_INSNS_PER_SECOND,
            "speedup_vs_baseline": round(rate / BASELINE_INSNS_PER_SECOND, 3),
        },
        "emulator_compiled": measure_backend_mips(iters, repeats),
        "emulator_memory": measure_memory_mips(
            500 if smoke else 5_000, repeats),
        "qta_overhead_factor": round(measure_qta_overhead(iters), 3),
        "telemetry_overhead": measure_telemetry_overhead(
            iters, repeats=3 if smoke else 6),
        "campaign": measure_campaign(mutants, jobs),
        "campaign_checkpoint": measure_checkpoint_campaign(
            mutants=20 if smoke else 60,
            iters=800 if smoke else 4_000),
        "fuzz_campaign": measure_fuzz_campaign(
            iterations=300 if smoke else 3_000, jobs=jobs),
        "cluster_scaling": measure_cluster_scaling(
            job_count=4 if smoke else 8,
            mutants=6 if smoke else 20),
        "differential_matrix": measure_differential_matrix(
            programs=6 if smoke else 30, smoke=smoke),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="emulator + campaign performance report")
    parser.add_argument("--smoke", action="store_true",
                        help="fast subset (smaller workload, fewer mutants)")
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_emulator.json"),
        help="output path (default: repo-root BENCH_emulator.json)")
    args = parser.parse_args(argv)

    report = build_report(smoke=args.smoke)
    text = json.dumps(report, indent=2, sort_keys=True)
    pathlib.Path(args.out).write_text(text + "\n")
    print(text)
    print(f"\nwritten: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
