"""A7 (ablation) — miss-always vs. loop-persistence cache analysis.

Follow-up to A6: the miss-always abstraction makes hot loops look many
times slower than they are.  The persistence analysis charges fitting
loops once per entry; this experiment quantifies how much of the cache
pessimism it recovers, and that loops a small cache cannot hold fall back
to miss-always (the analysis never turns unsound optimism on).
"""

import pytest

from repro.vp import ICacheConfig
from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

HOT_LOOP = """
_start:
    li t0, 0
    li t1, 200
    li a0, 0
hot:                   # @loopbound 200
    add a0, a0, t0
    xor a0, a0, t1
    addi t0, t0, 1
    blt t0, t1, hot
""" + EXIT

NESTED = """
_start:
    li s0, 0
    li s1, 10
no:                    # @loopbound 10
    li t0, 0
    li t1, 20
ni:                    # @loopbound 20
    add a0, a0, t0
    addi t0, t0, 1
    blt t0, t1, ni
    addi s0, s0, 1
    blt s0, s1, no
""" + EXIT

#: A loop whose body (30+ sequential ALU ops, ~128 bytes) cannot fit the
#: tiny cache: persistence must refuse and keep miss-always.
LONG_LOOP = ("""
_start:
    li t0, 0
    li t1, 50
    li a0, 0
long:                  # @loopbound 50
"""
             + "\n".join(f"    addi a0, a0, {i % 5}" for i in range(30))
             + """
    addi t0, t0, 1
    blt t0, t1, long
""" + EXIT)

BIG_CACHE = ICacheConfig(size=1024, line_size=16, ways=2, miss_penalty=10)
TINY_CACHE = ICacheConfig(size=32, line_size=16, ways=1, miss_penalty=10)

CASES = [
    ("hot-loop/1KiB", HOT_LOOP, BIG_CACHE),
    ("nested/1KiB", NESTED, BIG_CACHE),
    ("long-loop/32B", LONG_LOOP, TINY_CACHE),
]


def run_cases():
    rows = []
    for name, source, cache in CASES:
        miss_always = analyze_program(source, icache=cache)
        persistent = analyze_program(source, icache=cache,
                                     cache_analysis=True)
        rows.append((name, miss_always, persistent))
    return rows


def test_a7_persistence_analysis(benchmark, record):
    rows = benchmark.pedantic(run_cases, rounds=1, iterations=1)

    header = (f"{'case':<16} {'actual':>8} {'miss-always':>12} "
              f"{'persistence':>12} {'pess m-a':>9} {'pess pers':>10}")
    lines = [header, "-" * len(header)]
    for name, miss_always, persistent in rows:
        actual = miss_always.result.actual_cycles
        lines.append(
            f"{name:<16} {actual:>8} {miss_always.static_bound.cycles:>12} "
            f"{persistent.static_bound.cycles:>12} "
            f"{miss_always.static_bound.cycles / actual:>8.2f}x "
            f"{persistent.static_bound.cycles / actual:>9.2f}x"
        )
    record("A7-cache-persistence", "\n".join(lines))

    by_name = {name: (m, p) for name, m, p in rows}
    for name, (miss_always, persistent) in by_name.items():
        for analysis in (miss_always, persistent):
            assert analysis.static_bound.cycles >= analysis.result.wcet_time
            assert analysis.result.wcet_time >= analysis.result.actual_cycles
        assert persistent.static_bound.cycles <= \
            miss_always.static_bound.cycles, name

    # Fitting loops recover nearly all cache pessimism.
    for name in ("hot-loop/1KiB", "nested/1KiB"):
        _m, persistent = by_name[name]
        assert persistent.static_bound.cycles / \
            persistent.result.actual_cycles < 1.2
    # A cache too small for the loop falls back to miss-always exactly.
    miss_always, persistent = by_name["long-loop/32B"]
    assert persistent.static_bound.cycles == miss_always.static_bound.cycles
