"""T4 — BMI software evaluation (the PATMOS paper's speedup table).

Paper shape: the ten-instruction BMI extension wins on every kernel, with
the largest factors where a single instruction replaces a software loop
(population count, leading-zero count), and BMI instructions cost a
single ALU cycle ("no negative impact on the critical path").
"""

import pytest

from repro.bmi import evaluate_all, table
from repro.isa import Decoder
from repro.bmi import BMI_SPECS, RV32IM_ZBB
from repro.vp.timing import TimingModel, classify


def test_t4_bmi_kernel_speedups(benchmark, record):
    comparisons = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    record("T4-bmi-speedup", table(comparisons))

    rows = {row.name: row for row in comparisons}
    # Every kernel wins or ties on both metrics.
    for row in comparisons:
        assert row.bmi_instructions <= row.baseline_instructions, row.name
        assert row.bmi_cycles <= row.baseline_cycles, row.name
    # Loop-replacement kernels win big; fusion kernels win modestly.
    assert rows["popcount"].cycle_speedup > 2.0
    assert rows["clz-normalise"].cycle_speedup > 2.0
    assert rows["bit-scan"].cycle_speedup > 1.5
    assert 1.0 < rows["masked-select"].cycle_speedup < 2.0
    assert 1.0 < rows["arx-mix"].cycle_speedup < 2.0


def test_t4_bmi_single_cycle_cost(benchmark, record):
    """The critical-path claim maps to BMI = 1-cycle ALU class."""

    def check():
        timing = TimingModel()
        decoder = Decoder(RV32IM_ZBB)
        costs = {}
        for spec in BMI_SPECS:
            costs[spec.name] = timing.class_costs[classify(spec)]
        return costs

    costs = benchmark.pedantic(check, rounds=1, iterations=1)
    lines = [f"{name:<8} {cost} cycle(s)" for name, cost in costs.items()]
    record("T4-bmi-cycle-cost", "\n".join(lines))
    assert all(cost == 1 for cost in costs.values())
