"""T2 — fault-campaign scaling over ISA subset configurations.

Paper shape (fault-analysis platform): the campaign scales across RISC-V
ISA subsets; mutant counts follow the binary's coverage; a significant
fraction of mutants still *terminates normally* on the faulty model (the
cases flagged for countermeasures); throughput is high enough to make
QEMU-style platforms "adequate [and] efficient".
"""

import pytest

from repro.coverage import measure_coverage
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import IsaConfig
from repro.testgen import StructuredGenerator

CONFIGS = ["rv32i", "rv32im", "rv32imc"]
BUDGET = MutantBudget(code=40, gpr_transient=40, gpr_stuck=20,
                      memory_transient=15, memory_stuck=5)


def run_campaign(isa_name):
    isa = IsaConfig.from_string(isa_name)
    generated = StructuredGenerator(isa).generate(seed=42)
    campaign = FaultCampaign(generated.program, isa=isa)
    golden = campaign.golden()
    coverage = measure_coverage(generated.program, isa=isa)
    faults = generate_mutants(generated.program, coverage, BUDGET,
                              golden_instructions=golden.instructions,
                              seed=7)
    result = campaign.run(faults)
    return golden, result


def test_t2_fault_campaign_per_isa(benchmark, record):
    results = benchmark.pedantic(
        lambda: {name: run_campaign(name) for name in CONFIGS},
        rounds=1, iterations=1)

    header = (f"{'config':<10} {'golden insns':>13} {'mutants':>8} "
              f"{'masked':>7} {'sdc':>5} {'trap':>5} {'hang':>5} "
              f"{'normal-term':>12} {'mut/s':>8}")
    lines = [header, "-" * len(header)]
    for name in CONFIGS:
        golden, result = results[name]
        counts = result.counts
        lines.append(
            f"{name:<10} {golden.instructions:>13} {result.total:>8} "
            f"{counts['masked']:>7} {counts['sdc']:>5} {counts['trap']:>5} "
            f"{counts['hang']:>5} "
            f"{result.normal_termination_fraction:>11.1%} "
            f"{result.mutants_per_second:>8.1f}"
        )
    record("T2-fault-campaign", "\n".join(lines))

    for name in CONFIGS:
        _golden, result = results[name]
        # Every mutant classified; all four buckets accounted for.
        assert sum(result.counts.values()) == result.total
        # Paper's core observation: many faulty models terminate normally.
        assert result.normal_termination_fraction > 0.4
        # Some faults escape masking (the campaign is not vacuous).
        assert result.counts["masked"] < result.total
        # "Efficient platform": comfortably above 10 mutants/s in pure
        # Python (the authors' C-based QEMU reports far more; shape only).
        assert result.mutants_per_second > 10
