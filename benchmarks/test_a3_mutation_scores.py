"""A3 (ablation) — mutation scores as a test-quality metric.

The XEMU line of work uses binary mutation to grade verification
environments.  Ablation over our own generated suites: the self-checking
unit-test programs (dense compare-and-branch checks) must kill clearly
more binary mutants than programs with weak oracles — checksum-only
structured programs and check-free torture programs, which both rely on
mutants corrupting whatever happens to reach the exit code.
"""

import pytest

from repro.faultsim import run_mutation_testing
from repro.isa import RV32IMC_ZICSR
from repro.testgen import (
    StructuredGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)

SAMPLE = 120


def run_scores():
    unit_name, unit_program = UnitSuiteGenerator(RV32IMC_ZICSR).generate()[0]
    structured = StructuredGenerator(statements=8).generate(3)
    torture = TortureGenerator(
        RV32IMC_ZICSR, TortureConfig(length=120, seed=3)).generate()
    programs = {
        f"unit ({unit_name})": unit_program,
        "structured (checksum exit)": structured.program,
        "torture (no checks)": torture,
    }
    reports = {}
    for label, program in programs.items():
        # Structured programs pass with their checksum, not 0.
        expected = None if label.startswith("structured") else 0
        reports[label] = run_mutation_testing(
            program, isa=RV32IMC_ZICSR, sample=SAMPLE, seed=5,
            expected_exit=expected)
    return reports


def test_a3_mutation_scores_by_check_density(benchmark, record):
    reports = benchmark.pedantic(run_scores, rounds=1, iterations=1)

    header = f"{'suite program':<30} {'mutants':>8} {'killed':>7} {'score':>7}"
    lines = [header, "-" * len(header)]
    for label, report in reports.items():
        lines.append(f"{label:<30} {report.total:>8} {report.killed:>7} "
                     f"{report.score:>6.1%}")
    record("A3-mutation-scores", "\n".join(lines))

    unit = next(v for k, v in reports.items() if k.startswith("unit"))
    torture = reports["torture (no checks)"]
    # Check-dense tests catch more mutants than check-free ones.
    assert unit.score > torture.score
    assert unit.score > 0.5
