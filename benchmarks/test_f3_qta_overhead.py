"""F3 — QTA plugin overhead across program sizes.

Paper shape (QTA tool demo): co-simulating the WCET-annotated CFG costs a
bounded, size-independent overhead factor on top of plain emulation —
timing-annotated simulation remains practical for whole programs.
"""

import time

import pytest

from repro.asm import assemble
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig
from repro.wcet import QtaPlugin, preprocess, run_ait_analysis

EXIT = "\n    li a7, 93\n    ecall\n"


def make_workload(iterations: int) -> str:
    return f"""
_start:
    li t0, 0
    li t1, {iterations}
    li a0, 0
loop:                  # @loopbound {iterations}
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    andi a3, a2, 255
    add a0, a0, a3
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
""" + EXIT


SIZES = (1_000, 5_000, 20_000)


def run_pair(iterations: int):
    source = make_workload(iterations)
    program = assemble(source, isa=RV32IMC_ZICSR)

    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(program)
    start = time.perf_counter()
    plain = machine.run(max_instructions=10_000_000)
    plain_time = time.perf_counter() - start

    report = run_ait_analysis(program)
    cfg = preprocess(report)
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR))
    machine.load(program)
    plugin = QtaPlugin(cfg, strict=False)
    machine.add_plugin(plugin)
    start = time.perf_counter()
    instrumented = machine.run(max_instructions=10_000_000)
    qta_time = time.perf_counter() - start
    plugin.finalize()

    assert plain.instructions == instrumented.instructions
    return plain.instructions, plain_time, qta_time, plugin.wcet_time, \
        instrumented.cycles


def test_f3_qta_overhead_by_size(benchmark, record):
    rows = benchmark.pedantic(
        lambda: [run_pair(size) for size in SIZES], rounds=1, iterations=1)

    header = (f"{'dyn insns':>10} {'plain s':>9} {'with QTA s':>11} "
              f"{'overhead':>9} {'QTA path':>10} {'actual':>8}")
    lines = [header, "-" * len(header)]
    overheads = []
    for insns, plain_time, qta_time, path, actual in rows:
        overhead = qta_time / plain_time
        overheads.append(overhead)
        lines.append(
            f"{insns:>10} {plain_time:>9.3f} {qta_time:>11.3f} "
            f"{overhead:>8.2f}x {path:>10} {actual:>8}"
        )
    record("F3-qta-overhead", "\n".join(lines))

    # Bounded overhead, independent of program size (within noise).
    assert all(o < 6.0 for o in overheads)
    # The QTA invariant still holds at every size.
    for _insns, _pt, _qt, path, actual in rows:
        assert path >= actual
