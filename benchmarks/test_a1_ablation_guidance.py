"""A1 (ablation) — coverage guidance of the fault space.

Design choice called out in DESIGN.md: the platform prunes the fault space
with the coverage analysis.  Ablation: the same mutant budget spent with
and without guidance.  Guided campaigns concentrate faults on state the
program actually uses, so a larger fraction of mutants has an observable
effect (fewer trivially-masked injections) — the efficiency argument for
coverage-guided injection.
"""

import pytest

from repro.coverage import measure_coverage
from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator

BUDGET = MutantBudget(code=0, gpr_transient=80, gpr_stuck=40,
                      memory_transient=0, memory_stuck=0)


def run_ablation():
    generated = StructuredGenerator(statements=6).generate(seed=13)
    campaign = FaultCampaign(generated.program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    coverage = measure_coverage(generated.program, isa=RV32IMC_ZICSR)
    rows = {}
    for label, guide in (("guided", coverage), ("unguided", None)):
        faults = generate_mutants(generated.program, guide, BUDGET,
                                  golden_instructions=golden.instructions,
                                  seed=3)
        result = campaign.run(faults)
        effective = 1.0 - result.counts["masked"] / result.total
        rows[label] = (result, effective)
    return coverage, rows


def test_a1_coverage_guidance_effectiveness(benchmark, record):
    coverage, rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    header = (f"{'mode':<10} {'mutants':>8} {'masked':>7} {'effective':>10}")
    lines = [header, "-" * len(header)]
    for label, (result, effective) in rows.items():
        lines.append(f"{label:<10} {result.total:>8} "
                     f"{result.counts['masked']:>7} {effective:>9.1%}")
    lines.append(
        f"\nprogram accesses {len(coverage.gprs_accessed)}/32 GPRs; "
        "guidance avoids injecting into the remaining dead registers."
    )
    record("A1-ablation-guidance", "\n".join(lines))

    guided_effective = rows["guided"][1]
    unguided_effective = rows["unguided"][1]
    # Guided campaigns waste fewer injections on dead state.
    assert guided_effective > unguided_effective
    assert guided_effective > 0.15
