"""F4 — parallel fault-campaign scaling.

Paper shape (fault-analysis platform): campaigns are embarrassingly
parallel after the golden run, so wall time should drop near-linearly
with worker count — the property that makes large mutant populations
practical.  The engine must pay for that speed with nothing: the pooled
result is required to match the sequential ordering and classification
exactly.

On single-core hosts (this container) the wall-time assertion is
skipped — pool overhead with no parallel hardware can only slow the
campaign down — but the determinism check always runs.
"""

import multiprocessing
import time

import pytest

from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator

JOB_COUNTS = (1, 2, 4)
MUTANTS = 200


def _build():
    program = StructuredGenerator(statements=8).generate(9).program
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    per_cat = MUTANTS // 5
    faults = generate_mutants(
        program, None,
        MutantBudget(code=per_cat, gpr_transient=per_cat, gpr_stuck=per_cat,
                     memory_transient=per_cat, memory_stuck=per_cat),
        golden_instructions=golden.instructions, seed=4)
    return program, faults


def test_f4_parallel_scaling(benchmark, record):
    program, faults = _build()

    def sweep():
        rows = []
        for jobs in JOB_COUNTS:
            campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
            start = time.perf_counter()
            result = campaign.run(faults, jobs=jobs)
            elapsed = time.perf_counter() - start
            rows.append((jobs, elapsed, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cores = multiprocessing.cpu_count()
    baseline = rows[0]
    header = f"{'jobs':>5} {'seconds':>9} {'mutants/s':>10} {'speedup':>8}"
    lines = [header, "-" * len(header)]
    for jobs, elapsed, result in rows:
        lines.append(
            f"{jobs:>5} {elapsed:>9.3f} {len(faults) / elapsed:>10.1f} "
            f"{baseline[1] / elapsed:>7.2f}x")
    lines.append(f"\nhost cores: {cores}")
    record("F4-campaign-parallel", "\n".join(lines))

    # Determinism: every worker count reproduces the sequential run.
    reference = [(r.outcome, r.exit_code, r.trap_cause)
                 for r in baseline[2].results]
    for jobs, _elapsed, result in rows[1:]:
        assert [(r.outcome, r.exit_code, r.trap_cause)
                for r in result.results] == reference, \
            f"jobs={jobs} diverged from the sequential classification"

    if cores < 2:
        pytest.skip("single-core host: no parallel speedup to measure")
    # jobs=4 must cut wall time to <=0.6x of jobs=1 on multicore hosts.
    four = dict((jobs, elapsed) for jobs, elapsed, _ in rows)[4]
    assert four <= 0.6 * baseline[1], (
        f"jobs=4 took {four:.3f}s vs sequential {baseline[1]:.3f}s "
        f"({four / baseline[1]:.2f}x, expected <=0.6x)")
