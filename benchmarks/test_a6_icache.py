"""A6 (ablation) — instruction-cache modelling and WCET pessimism.

With a fetch cache on the VP, the sound static abstraction (miss-always)
diverges from reality as loops warm the cache: the bound stays safe but
pessimism grows with the miss penalty, concentrated in code that re-executes.
This quantifies the cost of cache-oblivious WCET analysis — the reason
industrial tools like aiT invest in cache must/may analysis.
"""

import pytest

from repro.vp import ICacheConfig
from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

HOT_LOOP = """
_start:
    li t0, 0
    li t1, 200
    li a0, 0
hot:                   # @loopbound 200
    add a0, a0, t0
    xor a0, a0, t1
    addi t0, t0, 1
    blt t0, t1, hot
""" + EXIT

COLD_STRAIGHT = ("_start:\n"
                 + "\n".join(f"    addi a0, a0, {i % 7}" for i in range(120))
                 + EXIT)

PENALTIES = (0, 5, 10, 20)


def run_sweep():
    rows = []
    for penalty in PENALTIES:
        icache = ICacheConfig(miss_penalty=penalty) if penalty else None
        hot = analyze_program(HOT_LOOP, icache=icache)
        cold = analyze_program(COLD_STRAIGHT, icache=icache)
        rows.append((penalty, hot, cold))
    return rows


def test_a6_icache_pessimism(benchmark, record):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = (f"{'penalty':>8} {'hot bound':>10} {'hot actual':>11} "
              f"{'hot pess':>9} {'cold bound':>11} {'cold actual':>12} "
              f"{'cold pess':>10}")
    lines = [header, "-" * len(header)]
    for penalty, hot, cold in rows:
        hot_pess = hot.static_bound.cycles / hot.result.actual_cycles
        cold_pess = cold.static_bound.cycles / cold.result.actual_cycles
        lines.append(
            f"{penalty:>8} {hot.static_bound.cycles:>10} "
            f"{hot.result.actual_cycles:>11} {hot_pess:>8.2f}x "
            f"{cold.static_bound.cycles:>11} "
            f"{cold.result.actual_cycles:>12} {cold_pess:>9.2f}x"
        )
    record("A6-icache-pessimism", "\n".join(lines))

    for penalty, hot, cold in rows:
        # Soundness with and without the cache model.
        assert hot.static_bound.cycles >= hot.result.wcet_time \
            >= hot.result.actual_cycles
        assert cold.static_bound.cycles >= cold.result.wcet_time \
            >= cold.result.actual_cycles
    # Hot-loop pessimism grows with the miss penalty...
    hot_pess = [hot.static_bound.cycles / hot.result.actual_cycles
                for _p, hot, _c in rows]
    assert hot_pess[-1] > hot_pess[0]
    # ...while straight-line code executes each line once: miss-always is
    # near-exact there at any penalty.
    for _penalty, _hot, cold in rows:
        assert cold.static_bound.cycles / cold.result.actual_cycles < 1.1
