"""F1 — emulator performance: translation-block caching and plugin cost.

Paper shape (the QEMU-based platform papers): block caching is what makes
the emulator fast (QEMU's core trick), and instrumentation through the
plugin API costs a bounded overhead factor — cheap enough that coverage
and QTA analyses are practical on every run.
"""

import pytest

from repro.asm import assemble
from repro.coverage import CoveragePlugin
from repro.isa import RV32IMC_ZICSR
from repro.vp import Machine, MachineConfig

# A compute-heavy loop: ~200k dynamic instructions.
WORKLOAD = """
_start:
    li t0, 0
    li t1, 20000
    li a0, 0
loop:
    add a0, a0, t0
    xor a1, a0, t0
    srli a2, a1, 3
    and a3, a2, t0
    or a0, a0, a3
    slli a0, a0, 1
    srli a0, a0, 1
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
"""


def run_configuration(block_cache: bool, plugin: str):
    machine = Machine(MachineConfig(isa=RV32IMC_ZICSR,
                                    block_cache_enabled=block_cache))
    machine.load(assemble(WORKLOAD, isa=RV32IMC_ZICSR))
    if plugin == "coverage":
        machine.add_plugin(CoveragePlugin())
    elif plugin == "qta":
        from repro.wcet import (QtaPlugin, build_cfg, preprocess,
                                run_ait_analysis)
        program = assemble(WORKLOAD, isa=RV32IMC_ZICSR)
        report = run_ait_analysis(program)
        machine.add_plugin(QtaPlugin(preprocess(report), strict=False))
    result = machine.run(max_instructions=500_000)
    return result


CONFIGS = [
    ("cache-on", True, "none"),
    ("cache-off", False, "none"),
    ("cache+coverage", True, "coverage"),
    ("cache+qta", True, "qta"),
]


@pytest.mark.parametrize("label,cache,plugin", CONFIGS)
def test_f1_emulation_speed(benchmark, label, cache, plugin):
    result = benchmark.pedantic(
        lambda: run_configuration(cache, plugin), rounds=1, iterations=1)
    assert result.stop_reason == "exit"
    benchmark.extra_info["instructions"] = result.instructions


def test_f1_summary(benchmark, record):
    import time

    def measure():
        rows = {}
        for label, cache, plugin in CONFIGS:
            start = time.perf_counter()
            result = run_configuration(cache, plugin)
            elapsed = time.perf_counter() - start
            rows[label] = (result.instructions, elapsed,
                           result.instructions / elapsed)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    header = f"{'configuration':<16} {'insns':>9} {'seconds':>9} {'insns/s':>12}"
    lines = [header, "-" * len(header)]
    for label, (insns, seconds, rate) in rows.items():
        lines.append(f"{label:<16} {insns:>9} {seconds:>9.3f} {rate:>12,.0f}")
    cached_rate = rows["cache-on"][2]
    uncached_rate = rows["cache-off"][2]
    lines.append(f"\nTB-cache speedup: {cached_rate / uncached_rate:.2f}x")
    coverage_overhead = cached_rate / rows["cache+coverage"][2]
    qta_overhead = cached_rate / rows["cache+qta"][2]
    lines.append(f"coverage plugin overhead: {coverage_overhead:.2f}x")
    lines.append(f"QTA plugin overhead: {qta_overhead:.2f}x")
    record("F1-emulator-performance", "\n".join(lines))

    # Shape: caching wins clearly; plugin overhead bounded.
    assert cached_rate > uncached_rate * 1.5
    assert coverage_overhead < 5.0
    assert qta_overhead < 5.0
