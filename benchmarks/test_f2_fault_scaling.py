"""F2 — fault-campaign scalability.

Paper shape (fault-analysis platform): campaign wall time grows linearly
with the number of mutants and with workload length — the property that
lets the platform "scale to more complex scenarios".
"""

import time

import pytest

from repro.faultsim import FaultCampaign, MutantBudget, generate_mutants
from repro.isa import RV32IMC_ZICSR
from repro.testgen import StructuredGenerator

MUTANT_COUNTS = (25, 50, 100, 200)
WORKLOAD_SIZES = (4, 8, 16)  # statements in the generated program


def _campaign_time(program, mutants):
    campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
    golden = campaign.golden()
    per_cat = max(1, mutants // 5)
    faults = generate_mutants(
        program, None,
        MutantBudget(code=per_cat, gpr_transient=per_cat, gpr_stuck=per_cat,
                     memory_transient=per_cat, memory_stuck=per_cat),
        golden_instructions=golden.instructions, seed=1)
    start = time.perf_counter()
    campaign.run(faults)
    return len(faults), time.perf_counter() - start


def test_f2_scaling_with_mutant_count(benchmark, record):
    program = StructuredGenerator(statements=8).generate(5).program

    def sweep():
        return [_campaign_time(program, count) for count in MUTANT_COUNTS]

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'mutants':>8} {'seconds':>9} {'mutants/s':>10}"
    lines = [header, "-" * len(header)]
    for count, seconds in series:
        lines.append(f"{count:>8} {seconds:>9.3f} {count / seconds:>10.1f}")
    record("F2-fault-scaling-mutants", "\n".join(lines))

    # Linear scaling: throughput stays within a 3x band across the sweep.
    rates = [count / seconds for count, seconds in series]
    assert max(rates) / min(rates) < 3.0
    # And more mutants really take more time.
    times = [seconds for _count, seconds in series]
    assert times[-1] > times[0]


def test_f2_scaling_with_workload_size(benchmark, record):
    def sweep():
        rows = []
        for statements in WORKLOAD_SIZES:
            program = StructuredGenerator(
                statements=statements).generate(5).program
            campaign = FaultCampaign(program, isa=RV32IMC_ZICSR)
            golden = campaign.golden()
            faults = generate_mutants(
                program, None,
                MutantBudget(code=20, gpr_transient=20, gpr_stuck=10,
                             memory_transient=0, memory_stuck=0),
                golden_instructions=golden.instructions, seed=2)
            start = time.perf_counter()
            campaign.run(faults)
            elapsed = time.perf_counter() - start
            rows.append((statements, golden.instructions, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = f"{'statements':>11} {'golden insns':>13} {'seconds':>9}"
    lines = [header, "-" * len(header)]
    for statements, insns, seconds in rows:
        lines.append(f"{statements:>11} {insns:>13} {seconds:>9.3f}")
    record("F2-fault-scaling-workload", "\n".join(lines))

    # Time per golden instruction stays in the same order of magnitude.
    unit_costs = [seconds / insns for _s, insns, seconds in rows]
    assert max(unit_costs) / min(unit_costs) < 10.0
