"""A4 (ablation) — node-level vs. edge-sensitive WCET annotation.

The QTA edge semantics speak of the worst case "in the current execution
context"; the node-level analysis ignores the context (every edge pays
the source block's full worst case), the edge-sensitive variant exempts
branch fall-through edges from the redirect penalty.  Ablation: bound and
path tightness of both modes on branchy vs. straight-line kernels, with
the soundness chain intact in both.
"""

import pytest

from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

PROGRAMS = {
    "branchy-parity": """
_start:
    li a0, 0
    li t0, 0
    li t1, 48
head:                  # @loopbound 48
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 3
    j tail
even:
    addi a0, a0, 1
tail:
    addi t0, t0, 1
    blt t0, t1, head
""" + EXIT,

    "branchy-clamp": """
_start:
    li a0, 0
    li t0, -20
    li t1, 20
cl:                    # @loopbound 40
    mv t2, t0
    bgez t2, pos
    neg t2, t2
pos:
    li t3, 10
    ble t2, t3, keep
    mv t2, t3
keep:
    add a0, a0, t2
    addi t0, t0, 1
    blt t0, t1, cl
""" + EXIT,

    "straight-mac": """
_start:
    li a0, 1
    li t0, 3
    mul a0, a0, t0
    mul a0, a0, t0
    add a0, a0, t0
    mul a0, a0, t0
    andi a0, a0, 1023
""" + EXIT,
}


def run_modes():
    rows = {}
    for name, source in PROGRAMS.items():
        node = analyze_program(source, name=name)
        edge = analyze_program(source, name=name, edge_sensitive=True)
        rows[name] = (node, edge)
    return rows


def test_a4_edge_sensitivity(benchmark, record):
    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    header = (f"{'program':<16} {'actual':>8} {'node bound':>11} "
              f"{'edge bound':>11} {'node pess':>10} {'edge pess':>10}")
    lines = [header, "-" * len(header)]
    for name, (node, edge) in rows.items():
        actual = node.result.actual_cycles
        lines.append(
            f"{name:<16} {actual:>8} {node.static_bound.cycles:>11} "
            f"{edge.static_bound.cycles:>11} "
            f"{node.static_bound.cycles / actual:>9.2f}x "
            f"{edge.static_bound.cycles / actual:>9.2f}x"
        )
    record("A4-edge-sensitivity", "\n".join(lines))

    for name, (node, edge) in rows.items():
        for analysis in (node, edge):
            assert analysis.static_bound.cycles >= analysis.result.wcet_time
            assert analysis.result.wcet_time >= analysis.result.actual_cycles
        # Edge sensitivity never loosens the bound ...
        assert edge.static_bound.cycles <= node.static_bound.cycles, name
    # ... and strictly tightens it on branchy code.
    for name in ("branchy-parity", "branchy-clamp"):
        node, edge = rows[name]
        assert edge.static_bound.cycles < node.static_bound.cycles
    node, edge = rows["straight-mac"]
    assert edge.static_bound.cycles == node.static_bound.cycles
