"""A8 (ablation) — schedulability: analytical RTA vs. simulation.

The RTOS-modelling line of the ecosystem evaluates real-time properties on
abstract task models.  This experiment sweeps task-set utilization and
compares the analytical verdict (response-time analysis) against the
hyperperiod simulation:

* RTA is *safe*: it never accepts a set the simulation shows missing,
* its bound dominates every observed response,
* acceptance falls off as utilization approaches 100 % for non-harmonic
  periods (the rate-monotonic bound in action).
"""

import random

import pytest

from repro.rtos import TaskSpec, analyze_taskset, total_utilization

PERIOD_POOL = (20, 30, 50, 70, 110, 130)
SETS_PER_LEVEL = 12
LEVELS = (0.5, 0.7, 0.85, 1.0)


def random_taskset(rng: random.Random, target_util: float):
    periods = rng.sample(PERIOD_POOL, 3)
    shares = [rng.random() for _ in periods]
    scale = target_util / sum(shares)
    tasks = []
    for index, (period, share) in enumerate(zip(periods, shares)):
        wcet = max(1, min(period, round(share * scale * period)))
        tasks.append(TaskSpec(f"t{index}", period, wcet))
    return tasks


def run_sweep():
    rng = random.Random(7)
    rows = []
    for level in LEVELS:
        accepted = 0
        sim_clean = 0
        unsafe = 0
        inconsistent = 0
        for _ in range(SETS_PER_LEVEL):
            tasks = random_taskset(rng, level)
            report = analyze_taskset(tasks)
            if report.rta.schedulable:
                accepted += 1
                if report.simulation.missed:
                    unsafe += 1
            if not report.simulation.missed:
                sim_clean += 1
            if not report.consistent:
                inconsistent += 1
        rows.append((level, accepted, sim_clean, unsafe, inconsistent))
    return rows


def test_a8_schedulability_sweep(benchmark, record):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = (f"{'target U':>9} {'RTA accepts':>12} {'sim clean':>10} "
              f"{'unsafe':>7} {'inconsistent':>13}   (of "
              f"{SETS_PER_LEVEL} sets)")
    lines = [header, "-" * len(header)]
    for level, accepted, sim_clean, unsafe, inconsistent in rows:
        lines.append(f"{level:>8.0%} {accepted:>12} {sim_clean:>10} "
                     f"{unsafe:>7} {inconsistent:>13}")
    record("A8-schedulability", "\n".join(lines))

    for _level, accepted, sim_clean, unsafe, inconsistent in rows:
        # Safety: RTA never accepts a set that misses in simulation, and
        # its bounds always dominate the simulated responses.
        assert unsafe == 0
        assert inconsistent == 0
        # RTA is conservative: it can reject sets the simulation survives.
        assert accepted <= sim_clean
    # Low utilization is comfortably schedulable; full load mostly is not.
    assert rows[0][1] > rows[-1][1]
    assert rows[0][1] >= SETS_PER_LEVEL - 2
