"""A2 (ablation) — timing-model parameters vs. WCET pessimism.

Design choice called out in DESIGN.md: the VP and the static analysis share
one timing model, which guarantees soundness by construction.  Ablation:
sweep the model's branch penalty and divider latency and observe that the
soundness chain holds under every parameterisation while the *pessimism*
(bound/actual) moves with the penalty — branchy code pays for
outcome-independent worst-casing, straight-line code does not.
"""

import pytest

from repro.vp.timing import TimingModel
from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

BRANCHY = """
_start:
    li a0, 0
    li t0, 0
    li t1, 64
bl:                    # @loopbound 64
    andi t2, t0, 1
    beqz t2, even
    addi a0, a0, 3
    j next
even:
    addi a0, a0, 1
next:
    addi t0, t0, 1
    blt t0, t1, bl
""" + EXIT

STRAIGHT = """
_start:
    li a0, 1
    li t0, 7
    mul a0, a0, t0
    mul a0, a0, t0
    mul a0, a0, t0
    div a0, a0, t0
    div a0, a0, t0
    andi a0, a0, 127
""" + EXIT


def model(penalty: int, div_cost: int) -> TimingModel:
    return TimingModel(class_costs={
        "alu": 1, "mul": 3, "div": div_cost, "load": 2, "store": 2,
        "branch": 1, "jump": 1, "csr": 1, "system": 1,
    }, taken_penalty=penalty)


SWEEP = [(0, 34), (2, 34), (5, 34), (2, 8), (2, 64)]


def run_sweep():
    rows = []
    for penalty, div_cost in SWEEP:
        timing = model(penalty, div_cost)
        branchy = analyze_program(BRANCHY, timing=timing)
        straight = analyze_program(STRAIGHT, timing=timing)
        rows.append((penalty, div_cost, branchy, straight))
    return rows


def test_a2_timing_model_sweep(benchmark, record):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = (f"{'penalty':>8} {'div':>5} "
              f"{'branchy bound':>14} {'branchy actual':>15} {'pess':>6} "
              f"{'straight bound':>15} {'straight actual':>16} {'pess':>6}")
    lines = [header, "-" * len(header)]
    for penalty, div_cost, branchy, straight in rows:
        bp = branchy.static_bound.cycles / branchy.result.actual_cycles
        sp = straight.static_bound.cycles / straight.result.actual_cycles
        lines.append(
            f"{penalty:>8} {div_cost:>5} "
            f"{branchy.static_bound.cycles:>14} "
            f"{branchy.result.actual_cycles:>15} {bp:>5.2f}x "
            f"{straight.static_bound.cycles:>15} "
            f"{straight.result.actual_cycles:>16} {sp:>5.2f}x"
        )
    record("A2-ablation-timing", "\n".join(lines))

    for _penalty, _div, branchy, straight in rows:
        # Soundness holds under every parameterisation.
        assert branchy.static_bound.cycles >= branchy.result.wcet_time \
            >= branchy.result.actual_cycles
        assert straight.static_bound.cycles >= straight.result.wcet_time \
            >= straight.result.actual_cycles
    # Straight-line code: the bound is exact regardless of the penalty.
    for _penalty, _div, _branchy, straight in rows:
        assert straight.static_bound.cycles == straight.result.actual_cycles
    # Branchy code: pessimism grows with the penalty.
    pessimism = {penalty: branchy.static_bound.cycles
                 / branchy.result.actual_cycles
                 for penalty, div, branchy, _s in rows if div == 34}
    assert pessimism[5] > pessimism[0]
