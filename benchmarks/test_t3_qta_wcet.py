"""T3 — QTA timing-annotated simulation vs static WCET bound.

Paper shape (QTA tool demo): for every benchmark program the static IPET
bound dominates the QTA-simulated worst-case path time, which dominates
the actually consumed cycles; pessimism stays moderate for control-flow-
regular programs.
"""

import pytest

from repro.wcet import analyze_program

EXIT = "\n    li a7, 93\n    ecall\n"

PROGRAMS = {
    "fib": """
_start:
    li a0, 0
    li a1, 1
    li t0, 0
    li t1, 24
fib:                    # @loopbound 24
    add t2, a0, a1
    mv a0, a1
    mv a1, t2
    addi t0, t0, 1
    blt t0, t1, fib
""" + EXIT,

    "matmul-2x2": """
_start:
    la s0, a
    la s1, b
    la s2, c
    li s3, 0            # i
mm_i:                   # @loopbound 2
    li s4, 0            # j
mm_j:                   # @loopbound 2
    li s5, 0            # k
    li s6, 0            # acc
mm_k:                   # @loopbound 2
    slli t0, s3, 3
    slli t1, s5, 2
    add t0, t0, t1
    add t0, t0, s0
    lw t2, 0(t0)        # a[i][k]
    slli t0, s5, 3
    slli t1, s4, 2
    add t0, t0, t1
    add t0, t0, s1
    lw t3, 0(t0)        # b[k][j]
    mul t2, t2, t3
    add s6, s6, t2
    addi s5, s5, 1
    li t0, 2
    blt s5, t0, mm_k
    slli t0, s3, 3
    slli t1, s4, 2
    add t0, t0, t1
    add t0, t0, s2
    sw s6, 0(t0)
    addi s4, s4, 1
    li t0, 2
    blt s4, t0, mm_j
    addi s3, s3, 1
    li t0, 2
    blt s3, t0, mm_i
    lw a0, 0(s2)
""" + EXIT + """
.data
a: .word 1, 2, 3, 4
b: .word 5, 6, 7, 8
c: .zero 16
""",

    "bubble-sort": """
_start:
    la s0, array
    li s1, 8
bs_outer:               # @loopbound 8
    li t0, 0
    addi t1, s1, -1
bs_inner:               # @loopbound 7
    slli t2, t0, 2
    add t2, t2, s0
    lw t3, 0(t2)
    lw t4, 4(t2)
    ble t3, t4, bs_skip
    sw t4, 0(t2)
    sw t3, 4(t2)
bs_skip:
    addi t0, t0, 1
    blt t0, t1, bs_inner
    addi s1, s1, -1
    li t0, 1
    bgt s1, t0, bs_outer
    la s0, array
    lw a0, 0(s0)
""" + EXIT + """
.data
array: .word 7, 3, 9, 1, 8, 2, 6, 4
""",

    "crc8": """
_start:
    la s0, message
    li s1, 16
    li a0, 0
crc_byte:               # @loopbound 16
    lbu t0, 0(s0)
    xor a0, a0, t0
    li t1, 8
crc_bit:                # @loopbound 8
    andi t2, a0, 0x80
    slli a0, a0, 1
    andi a0, a0, 0xFF
    beqz t2, crc_next
    xori a0, a0, 0x07
crc_next:
    addi t1, t1, -1
    bnez t1, crc_bit
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, crc_byte
""" + EXIT + """
.data
message: .ascii "scale4edge-DATE!"
""",

    "state-machine": """
# A small branchy protocol state machine over an input tape.
_start:
    la s0, tape
    li s1, 20
    li s2, 0            # state
    li a0, 0            # accepted count
sm_step:                # @loopbound 20
    lbu t0, 0(s0)
    beqz s2, sm_state0
    li t1, 1
    beq s2, t1, sm_state1
    # state 2: accept on 'c', reset
    li t1, 'c'
    bne t0, t1, sm_reset
    addi a0, a0, 1
sm_reset:
    li s2, 0
    j sm_next
sm_state0:
    li t1, 'a'
    bne t0, t1, sm_next
    li s2, 1
    j sm_next
sm_state1:
    li t1, 'b'
    beq t0, t1, sm_to2
    li s2, 0
    j sm_next
sm_to2:
    li s2, 2
sm_next:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, sm_step
""" + EXIT + """
.data
tape: .ascii "abcabxabcaabcbabcabc"
""",
}


def analyze_all():
    return {name: analyze_program(source, name=name)
            for name, source in PROGRAMS.items()}


def test_t3_qta_vs_static_bound(benchmark, record):
    analyses = benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    header = (f"{'program':<14} {'static bound':>13} {'QTA path':>10} "
              f"{'actual':>8} {'bound/actual':>13} {'path/actual':>12}")
    lines = [header, "-" * len(header)]
    for name, analysis in analyses.items():
        bound = analysis.static_bound.cycles
        path = analysis.result.wcet_time
        actual = analysis.result.actual_cycles
        lines.append(
            f"{name:<14} {bound:>13} {path:>10} {actual:>8} "
            f"{bound / actual:>12.2f}x {path / actual:>11.2f}x"
        )
    record("T3-qta-wcet", "\n".join(lines))

    for name, analysis in analyses.items():
        bound = analysis.static_bound.cycles
        path = analysis.result.wcet_time
        actual = analysis.result.actual_cycles
        # The soundness chain of the QTA flow.
        assert bound >= path >= actual, name
        # Pessimism should stay within a small factor for these kernels.
        assert bound / actual < 3.0, name
