"""A5 (ablation) — software countermeasure effectiveness.

The fault-analysis paper flags mutants that terminate normally with wrong
results as the cases needing "additional hardware or software safety
countermeasures".  This experiment closes that loop: the same transient
register-fault pressure against an unprotected checksum kernel, a
duplication-with-comparison (DWC) variant, and a TMR variant.

Expected shape: the unprotected kernel suffers silent data corruption;
DWC converts SDC into *detections*; TMR removes SDC by correcting (its
corrected runs appear as benign results).
"""

import pytest

from repro.faultsim.countermeasures import (
    BENIGN,
    CRASH,
    DETECTED,
    SDC,
    evaluate_countermeasures,
    table,
)


def test_a5_countermeasure_effectiveness(benchmark, record):
    results = benchmark.pedantic(
        lambda: evaluate_countermeasures(mutants=150, seed=1),
        rounds=1, iterations=1)
    record("A5-countermeasures", table(results))

    unprotected = results["unprotected"]
    dwc = results["dwc"]
    tmr = results["tmr"]

    # All variants compute the same checksum.
    assert unprotected.golden_exit == dwc.golden_exit == tmr.golden_exit

    # The unprotected kernel leaks silent corruptions.
    assert unprotected.rate(SDC) > 0.05
    assert unprotected.rate(DETECTED) == 0.0

    # DWC turns silent corruption into detection.
    assert dwc.rate(SDC) < unprotected.rate(SDC) / 2
    assert dwc.rate(DETECTED) > 0.1

    # TMR eliminates (corrects) silent corruption without detections.
    assert tmr.rate(SDC) < 0.02
    assert tmr.rate(BENIGN) > unprotected.rate(BENIGN)
