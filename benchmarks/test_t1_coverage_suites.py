"""T1 — suite coverage comparison (the coverage paper's headline table).

Paper shape: the architectural, unit, and Torture suites each have a
distinct coverage trade-off; no single suite reaches full register
coverage; the combined suite reaches 100 % GPR and FPR coverage and
~99 % instruction-type coverage.
"""

import pytest

from repro.coverage import measure_suite
from repro.isa import RV32IMCF_ZICSR
from repro.testgen import (
    ArchSuiteGenerator,
    TortureConfig,
    TortureGenerator,
    UnitSuiteGenerator,
)

ISA = RV32IMCF_ZICSR
BUDGET = 200_000


def build_suites():
    return {
        "architectural": ArchSuiteGenerator(ISA).generate(),
        "unit-tests": UnitSuiteGenerator(ISA).generate(),
        "torture": TortureGenerator(
            ISA, TortureConfig(length=500)).generate_suite(3),
    }


def measure_all():
    suites = build_suites()
    unions = {
        name: measure_suite(programs, isa=ISA,
                            max_instructions=BUDGET).union
        for name, programs in suites.items()
    }
    combined = unions["architectural"] | unions["unit-tests"] \
        | unions["torture"]
    return suites, unions, combined


def render(suites, unions, combined) -> str:
    header = (f"{'suite':<16} {'programs':>9} {'insn types':>12} "
              f"{'GPR':>8} {'FPR':>8} {'CSR':>8}")
    lines = [header, "-" * len(header)]
    for name in suites:
        union = unions[name]
        lines.append(
            f"{name:<16} {len(suites[name]):>9} "
            f"{union.insn_coverage:>11.1%} {union.gpr_coverage:>7.1%} "
            f"{union.fpr_coverage:>7.1%} {union.csr_coverage:>7.1%}"
        )
    total = sum(len(p) for p in suites.values())
    lines.append(
        f"{'combined':<16} {total:>9} {combined.insn_coverage:>11.1%} "
        f"{combined.gpr_coverage:>7.1%} {combined.fpr_coverage:>7.1%} "
        f"{combined.csr_coverage:>7.1%}"
    )
    return "\n".join(lines)


def test_t1_coverage_suite_comparison(benchmark, record):
    suites, unions, combined = benchmark.pedantic(
        measure_all, rounds=1, iterations=1)
    record("T1-coverage-suites", render(suites, unions, combined))

    # Paper shape: individual trade-offs ...
    assert unions["architectural"].insn_coverage == 1.0
    assert unions["architectural"].gpr_coverage < 1.0
    assert unions["torture"].gpr_coverage == 1.0
    assert unions["torture"].insn_coverage < 0.95
    assert unions["unit-tests"].insn_coverage < \
        unions["architectural"].insn_coverage
    # ... and the union closes the gap (paper: 100 % GPR/FPR, 98.7 % insn).
    assert combined.gpr_coverage == 1.0
    assert combined.fpr_coverage == 1.0
    assert combined.insn_coverage >= 0.98
