"""Shared helpers for the experiment benchmarks.

Every benchmark prints the table/series its experiment reproduces and also
writes it to ``benchmarks/out/<experiment>.txt`` so EXPERIMENTS.md can be
cross-checked against fresh runs.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def record():
    """Fixture: record(experiment, text) prints and persists a table."""

    def _record(experiment: str, text: str) -> None:
        banner = f"===== {experiment} ====="
        print(f"\n{banner}\n{text}\n")
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{experiment}.txt").write_text(text + "\n")

    return _record
