# Convenience targets for the Scale4Edge reproduction.
#
# PYTHONPATH is pointed at src/ so every target works from a clean
# checkout without an editable install (matching the tier-1 verify
# command in ROADMAP.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-report bench-smoke fuzz-smoke jit-smoke cluster-smoke verify-smoke examples experiments clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Headline performance numbers (MIPS, mutants/s, QTA overhead) written
# to BENCH_emulator.json at the repo root.
bench-report:
	$(PYTHON) benchmarks/bench_report.py

# Fast subset of the report for CI smoke runs.
bench-smoke:
	$(PYTHON) benchmarks/bench_report.py --smoke

# Bounded fuzzing smoke: coverage growth + triage parse + determinism.
fuzz-smoke:
	$(PYTHON) examples/fuzz_smoke.py

# Compiled-tier smoke: JIT engages on F1, results byte-identical to the
# interpreter, speedup above the floor.
jit-smoke:
	$(PYTHON) examples/jit_smoke.py

# Cluster-fabric smoke: coordinator + 2 worker nodes, sharded seeded
# campaign byte-identical to the single-process run, graceful drain.
cluster-smoke:
	$(PYTHON) examples/cluster_smoke.py

# Differential verification smoke: clean interp~compiled matrix over a
# seeded corpus, then a seeded-bug canary must be caught, lockstep-
# pinpointed, and minimized.
verify-smoke:
	$(PYTHON) examples/verify_smoke.py

# Run every example script (each asserts its own expected behaviour).
examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

# Regenerate the experiment tables referenced by EXPERIMENTS.md.
experiments: bench
	@echo; echo "tables written to benchmarks/out/:"; ls benchmarks/out/

clean:
	rm -rf benchmarks/out .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
